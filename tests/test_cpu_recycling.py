"""Tests for the §II-B buffer recycling modes (copy / re-allocate)."""

import pytest

from repro.core.policies import ddio, idio
from repro.cpu.dpdk import (
    RECYCLE_COPY,
    RECYCLE_MODES,
    RECYCLE_REALLOCATE,
    RECYCLE_RUN_TO_COMPLETION,
    PollModeDriver,
)
from repro.harness.experiment import Experiment, run_experiment
from repro.harness.server import ServerConfig
from repro.sim import units


def run_mode(mode, policy=None, ring=64, rate=50.0, **kwargs):
    exp = Experiment(
        name=f"recycle-{mode}",
        server=ServerConfig(
            policy=policy or ddio(),
            app="touchdrop",
            ring_size=ring,
            recycle_mode=mode,
            **kwargs,
        ),
        traffic="bursty",
        burst_rate_gbps=rate,
    )
    return run_experiment(exp)


class TestModeValidation:
    def test_all_modes_enumerated(self):
        assert set(RECYCLE_MODES) == {"run_to_completion", "copy", "reallocate"}

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            run_mode("zero-copy-deluxe")

    def test_reallocate_requires_pool(self):
        with pytest.raises(ValueError):
            PollModeDriver(
                None, None, None, None,
                __import__("repro.cpu.apps", fromlist=["TouchDrop"]).TouchDrop(),
                recycle_mode=RECYCLE_REALLOCATE,
            )

    def test_copy_requires_copy_pool(self):
        with pytest.raises(ValueError):
            PollModeDriver(
                None, None, None, None,
                __import__("repro.cpu.apps", fromlist=["TouchDrop"]).TouchDrop(),
                recycle_mode=RECYCLE_COPY,
            )

    def test_transmitting_app_requires_run_to_completion(self):
        exp = Experiment(
            name="bad",
            server=ServerConfig(app="l2fwd", ring_size=32, recycle_mode=RECYCLE_COPY),
            traffic="bursty",
            burst_rate_gbps=50.0,
        )
        with pytest.raises(ValueError):
            run_experiment(exp)


class TestCopyMode:
    def test_all_packets_complete(self):
        result = run_mode(RECYCLE_COPY)
        assert result.completed == result.rx_packets == 128

    def test_copy_doubles_core_memory_traffic(self):
        plain = run_mode(RECYCLE_RUN_TO_COMPLETION)
        copied = run_mode(RECYCLE_COPY)
        plain_accesses = sum(c.stats.mem_accesses for c in plain.server.cores)
        copy_accesses = sum(c.stats.mem_accesses for c in copied.server.cores)
        # Copy mode reads the DMA lines AND writes the copy AND processes
        # the copy: ~2x the line touches of in-place processing.
        assert copy_accesses > plain_accesses * 1.7

    def test_copy_mode_slower_per_packet(self):
        plain = run_mode(RECYCLE_RUN_TO_COMPLETION)
        copied = run_mode(RECYCLE_COPY)
        assert copied.burst_processing_time > plain.burst_processing_time

    def test_dma_buffer_dead_after_copy_with_idio(self):
        result = run_mode(RECYCLE_COPY, policy=idio())
        assert result.server.stats.counters.get("self_invalidations") > 0
        assert result.completed == 128


class TestReallocateMode:
    def test_all_packets_complete(self):
        result = run_mode(RECYCLE_REALLOCATE)
        assert result.completed == result.rx_packets == 128

    def test_pool_conserved_after_drain(self):
        result = run_mode(RECYCLE_REALLOCATE)
        for driver in result.server.drivers:
            pool = driver.buffer_pool
            # All stashed buffers returned; the ring still holds ring_size.
            assert len(pool) == pool.count - result.server.config.ring_size

    def test_ring_replenished_with_pool_buffers(self):
        result = run_mode(RECYCLE_REALLOCATE)
        driver = result.server.drivers[0]
        pool = driver.buffer_pool
        for desc in driver.queue.ring.descriptors:
            offset = desc.buffer_addr - pool.base
            assert 0 <= offset < pool.span_bytes()

    def test_larger_dma_footprint_than_run_to_completion(self):
        """Re-allocation cycles through 2x the buffer addresses, so the
        effective DMA footprint in the hierarchy grows."""
        plain = run_mode(RECYCLE_RUN_TO_COMPLETION, ring=256, rate=100.0)
        realloc = run_mode(RECYCLE_REALLOCATE, ring=256, rate=100.0)
        plain_addrs = plain.server.config.ring_size * 2  # 2 NF cores
        pool_addrs = sum(d.buffer_pool.count for d in realloc.server.drivers)
        assert pool_addrs == 2 * plain_addrs

    def test_idio_invalidation_after_deferred_processing(self):
        result = run_mode(RECYCLE_REALLOCATE, policy=idio())
        assert result.server.stats.counters.get("self_invalidations") > 0
        assert result.completed == 128


class TestLatencyOrdering:
    def test_completions_preserve_packet_order_per_core(self):
        for mode in RECYCLE_MODES:
            result = run_mode(mode)
            for driver in result.server.drivers:
                ids = [p.packet_id for p in driver.completed_packets]
                assert ids == sorted(ids), mode
