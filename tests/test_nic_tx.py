"""Tests for TX descriptor rings and the transmit engine."""

import pytest

from repro.core.policies import ddio, idio
from repro.harness.experiment import Experiment, run_experiment
from repro.harness.server import ServerConfig
from repro.mem.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.nic.dma import DMAEngine
from repro.nic.tx import TxEngine, TxRing, TxRingFullError
from repro.pcie.root_complex import RootComplex
from repro.sim import Simulator, units
from tests.memtxn import cpu_access, pcie_write


def make_tx(size=4):
    sim = Simulator()
    h = MemoryHierarchy(HierarchyConfig(num_cores=1, l1_enabled=False))
    rc = RootComplex(sim, h)
    dma = DMAEngine(sim, rc)
    ring = TxRing(size, desc_base=0x8000)
    engine = TxEngine(sim, dma, ring)
    return sim, h, ring, engine


class TestTxRing:
    def test_post_and_complete(self):
        sim, h, ring, engine = make_tx()
        desc = ring.post(0x100000, 1514)
        assert ring.free_slots() == 3
        ring.complete(desc)
        assert ring.free_slots() == 4

    def test_full_ring_raises(self):
        sim, h, ring, engine = make_tx(size=2)
        ring.post(0x100000, 64)
        ring.post(0x100800, 64)
        with pytest.raises(TxRingFullError):
            ring.post(0x101000, 64)

    def test_fifo_processing_order(self):
        sim, h, ring, engine = make_tx()
        a = ring.post(0x100000, 64)
        b = ring.post(0x100800, 64)
        assert ring.next_posted() is a
        ring.complete(a)
        assert ring.next_posted() is b

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            TxRing(0, 0x8000)

    def test_complete_unposted_rejected(self):
        sim, h, ring, engine = make_tx()
        with pytest.raises(ValueError):
            ring.complete(ring.descriptors[0])


class TestTxEngine:
    def test_full_egress_sequence(self):
        """Descriptor fetch + payload reads + completion writeback."""
        sim, h, ring, engine = make_tx()
        done = []
        ring.post(0x100000, 1514, on_complete=lambda: done.append(sim.now))
        engine.doorbell()
        sim.run(until=units.microseconds(10))
        assert done, "TX never completed"
        # 2 descriptor lines + 24 payload lines read over PCIe.
        assert h.stats.counters.get("pcie_reads") == 26
        # 2 descriptor lines written back as the completion.
        assert h.stats.counters.get("pcie_writes") == 2
        assert engine.packets_sent == 1
        assert engine.bytes_sent == 1514

    def test_back_to_back_packets_drain(self):
        sim, h, ring, engine = make_tx()
        for i in range(3):
            ring.post(0x100000 + i * 2048, 512)
        engine.doorbell()
        engine.doorbell()  # duplicate doorbells are harmless
        sim.run(until=units.microseconds(20))
        assert engine.packets_sent == 3
        assert ring.free_slots() == 4  # everything completed and freed

    def test_doorbell_delay_applies(self):
        sim, h, ring, engine = make_tx()
        ring.post(0x100000, 64)
        engine.doorbell()
        sim.run(until=engine.doorbell_delay - 1)
        assert engine.packets_sent == 0

    def test_tx_pulls_mlc_lines_back_to_llc(self):
        """The egress payload reads invalidate MLC copies (Fig. 3 right)."""
        sim, h, ring, engine = make_tx()
        pcie_write(h, 0x100000, 0)
        cpu_access(h, 0, 0x100000, True, 0)  # dirty line in MLC
        ring.post(0x100000, 64)
        engine.doorbell()
        sim.run(until=units.microseconds(10))
        assert 0x100000 not in h.mlc[0]
        assert 0x100000 in h.llc


class TestServerIntegration:
    def run_l2fwd(self, policy):
        exp = Experiment(
            name="tx-ring",
            server=ServerConfig(policy=policy, app="l2fwd", ring_size=64,
                                packet_bytes=1024),
            traffic="bursty",
            burst_rate_gbps=50.0,
        )
        return run_experiment(exp)

    def test_l2fwd_uses_tx_rings(self):
        result = self.run_l2fwd(ddio())
        engines = result.server.nic.tx_engines
        assert set(engines) == {0, 1}
        assert sum(e.packets_sent for e in engines.values()) == 128
        assert result.completed == 128

    def test_rx_rings_drain_after_tx_completions(self):
        result = self.run_l2fwd(ddio())
        for queue in result.server.nic.queues.values():
            assert queue.ring.occupancy() == 0

    def test_touchdrop_has_no_tx_ring(self):
        exp = Experiment(
            name="no-tx",
            server=ServerConfig(app="touchdrop", ring_size=32),
            traffic="bursty",
            burst_rate_gbps=50.0,
        )
        result = run_experiment(exp)
        assert result.server.nic.tx_engines == {}

    def test_idio_invalidation_after_tx_ring_completion(self):
        result = self.run_l2fwd(idio())
        # The TX reads already pulled the MLC copies back to the LLC
        # (Fig. 3 right), so the post-TX self-invalidation drops the dead
        # lines from the LLC.
        assert result.server.stats.counters.get("self_invalidations_llc") > 0
        assert result.completed == 128
