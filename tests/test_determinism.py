"""Determinism: identical configurations produce identical simulations.

Reproducibility is a core property of the harness — every stochastic
element (random replacement, the antagonist's access pattern) is seeded,
and the event kernel breaks timestamp ties FIFO.  Two runs of the same
experiment must agree on every counter and every packet latency.
"""

import pytest

from repro.core.policies import ddio, idio
from repro.harness.experiment import Experiment, run_experiment
from repro.harness.server import ServerConfig
from repro.sim import units


def run_once(policy, antagonist=False):
    exp = Experiment(
        name="determinism",
        server=ServerConfig(
            policy=policy, app="touchdrop", ring_size=128, antagonist=antagonist
        ),
        traffic="bursty",
        burst_rate_gbps=50.0,
    )
    return run_experiment(exp)


def fingerprint(result):
    return (
        result.server.stats.counters.snapshot(),
        tuple(result.latencies_ns),
        result.burst_processing_time,
        result.rx_packets,
        result.rx_drops,
    )


class TestDeterminism:
    def test_ddio_run_is_reproducible(self):
        assert fingerprint(run_once(ddio())) == fingerprint(run_once(ddio()))

    def test_idio_run_is_reproducible(self):
        assert fingerprint(run_once(idio())) == fingerprint(run_once(idio()))

    def test_corun_with_antagonist_is_reproducible(self):
        """The antagonist uses a seeded RNG: co-runs replay exactly."""
        a = run_once(ddio(), antagonist=True)
        b = run_once(ddio(), antagonist=True)
        assert fingerprint(a) == fingerprint(b)
        assert a.antagonist_access_ns == b.antagonist_access_ns

    def test_different_policies_differ(self):
        """Sanity: the fingerprint is sensitive enough to distinguish
        policies (guards against trivially-equal fingerprints)."""
        assert fingerprint(run_once(ddio())) != fingerprint(run_once(idio()))

    def test_serial_warm_pool_and_vectorized_agree(self):
        """Three-way identity: the serial path, the warm process pool,
        and the numpy-vectorized LRU must all produce byte-identical
        summaries — none of the acceleration layers may leak into
        simulation results."""
        import pickle

        from repro.harness.runner import run_experiments, shutdown_pool

        def exp(replacement=None):
            return Experiment(
                name="three-way",
                server=ServerConfig(
                    policy=idio(),
                    app="touchdrop",
                    ring_size=128,
                    replacement=replacement,
                ),
                traffic="bursty",
                burst_rate_gbps=50.0,
            )

        serial = run_experiments([exp(), exp()], jobs=1)
        pooled = run_experiments([exp(), exp()], jobs=2)
        shutdown_pool()
        vectorized = run_experiments(
            [exp("lru-vec"), exp("lru-vec")], jobs=1
        )
        prints = [
            pickle.dumps(s.fingerprint())
            for s in (*serial, *pooled, *vectorized)
        ]
        assert len(set(prints)) == 1
