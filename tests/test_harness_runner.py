"""Tests for the parallel experiment runner and ExperimentSummary.

The determinism regression is the load-bearing check: a seeded experiment
must produce byte-identical summaries whether it runs serially in-process
or inside a process-pool worker.  Everything a summary carries that is
simulation-derived participates in the fingerprint; only the wall-clock
diagnostics (``wall_seconds``/``events_per_second``) are excluded, since
they measure the host, not the simulation.
"""

import pickle

import pytest

from repro.core.policies import ddio, idio
from repro.harness.experiment import (
    Experiment,
    ExperimentSummary,
    run_experiment,
    run_policy_comparison,
)
from repro.harness.runner import (
    run_experiment_summary,
    run_experiments,
    run_named_experiments,
)
from repro.harness.server import ServerConfig


def small_experiment(name="runner-test", policy=None, **kwargs) -> Experiment:
    kwargs.setdefault("traffic", "bursty")
    exp = Experiment(
        name=name,
        server=ServerConfig(app="touchdrop", ring_size=128),
        burst_rate_gbps=25.0,
        **kwargs,
    )
    return exp.with_policy(policy) if policy is not None else exp


class TestExperimentSummary:
    def test_summary_matches_result(self):
        result = run_experiment(small_experiment(policy=idio()))
        summary = result.summary()
        assert summary.policy_name == result.policy_name
        assert summary.window == result.window
        assert summary.completed == result.completed
        assert summary.latencies_ns == result.latencies_ns
        assert summary.p99_ns == result.p99_ns
        assert summary.decisions == result.decisions
        assert summary.events_fired > 0

    def test_summary_timeline_matches_result_timeline(self):
        result = run_experiment(small_experiment())
        summary = result.summary()
        for stream in ("pcie_writes", "mlc_writebacks", "llc_writebacks"):
            assert summary.timeline(stream) == result.timeline(stream)

    def test_summary_count_between_matches_event_log(self):
        result = run_experiment(small_experiment())
        summary = result.summary()
        start, end = result.window.start, result.window.end
        mid = (start + end) // 2
        assert summary.count_between("pcie_writes", start, mid) == (
            result.server.stats.events.count_between("pcie_writes", start, mid)
        )

    def test_unknown_stream_rejected(self):
        summary = run_experiment_summary(small_experiment())
        with pytest.raises(KeyError):
            summary.count_between("no_such_stream", 0, 1)

    def test_summary_is_picklable_and_round_trips(self):
        summary = run_experiment_summary(small_experiment(policy=idio()))
        clone = pickle.loads(pickle.dumps(summary))
        assert clone.fingerprint() == summary.fingerprint()

    def test_drop_server_releases_server_and_blocks_server_methods(self):
        result = run_experiment(small_experiment())
        assert result.server is not None
        result.drop_server()
        assert result.server is None
        with pytest.raises(RuntimeError):
            result.timeline("pcie_writes")
        with pytest.raises(RuntimeError):
            result.summary()
        # Summary-level fields stay usable after the drop.
        assert result.completed > 0


class TestRunExperiments:
    def test_serial_results_are_ordered(self):
        exps = [small_experiment(name=f"order-{i}") for i in range(3)]
        summaries = run_experiments(exps, jobs=1)
        assert [s.experiment.name for s in summaries] == [e.name for e in exps]

    def test_parallel_matches_serial_byte_for_byte(self):
        """The determinism regression: pool workers replay a seeded
        experiment identically to the serial path."""
        exps = [
            small_experiment(name="det-ddio", policy=ddio()),
            small_experiment(name="det-idio", policy=idio()),
            small_experiment(
                name="det-poisson",
                policy=idio(),
                traffic="poisson",
                traffic_seed=7,
            ),
        ]
        serial = run_experiments(exps, jobs=1)
        parallel = run_experiments(exps, jobs=2)
        assert [s.experiment.name for s in parallel] == [e.name for e in exps]
        for ser, par in zip(serial, parallel):
            assert ser.fingerprint() == par.fingerprint()
            assert pickle.dumps(ser.fingerprint()) == pickle.dumps(par.fingerprint())

    def test_jobs_none_uses_all_cores(self):
        exps = [small_experiment(name=f"auto-{i}") for i in range(2)]
        summaries = run_experiments(exps, jobs=None)
        assert len(summaries) == 2

    def test_named_experiments_keyed_and_ordered(self):
        named = [
            ("first", small_experiment(name="n1")),
            ("second", small_experiment(name="n2", policy=idio())),
        ]
        results = run_named_experiments(named, jobs=1)
        assert list(results) == ["first", "second"]
        assert results["second"].policy_name == "idio"

    def test_policy_comparison_returns_summaries(self):
        results = run_policy_comparison(
            small_experiment(), [ddio(), idio()], jobs=2
        )
        assert set(results) == {"ddio", "idio"}
        assert all(isinstance(s, ExperimentSummary) for s in results.values())
