"""Tests for the warm session pool behind the parallel runner.

The pool contract: created once per session, reused across
``run_experiments``/``run_sweep`` calls (no per-batch fork), batches
broadcast through the generation-tagged spool file, results returned in
input order regardless of completion order, and the resilience paths
(crash retry, timeout-poisoned-pool replacement) intact on the warm
pool.  Everything here skips cleanly on hosts where process pools are
unavailable (``get_pool`` returns ``None`` there by design).
"""

import pickle

import pytest

from repro.faults import FaultPlan, FaultSpec
from repro.harness import runner
from repro.harness.experiment import Experiment
from repro.harness.runner import (
    _chunksize,
    get_pool,
    pool_session,
    run_experiments,
    run_sweep,
    shutdown_pool,
)
from repro.harness.server import ServerConfig


def small_experiment(name="warm-test", **kwargs) -> Experiment:
    kwargs.setdefault("traffic", "bursty")
    kwargs.setdefault("burst_rate_gbps", 25.0)
    server = kwargs.pop("server", None) or ServerConfig(
        app="touchdrop", ring_size=128
    )
    return Experiment(name=name, server=server, **kwargs)


@pytest.fixture
def warm_pool():
    """A live warm pool (or skip), torn down after the test."""
    shutdown_pool()
    pool = get_pool(2)
    if pool is None:
        pytest.skip("host cannot create process pools")
    yield pool
    shutdown_pool()


class TestWarmReuse:
    def test_same_pool_object_across_batches(self, warm_pool):
        batches = warm_pool.batches_dispatched
        run_experiments([small_experiment(f"a{i}") for i in range(2)], jobs=2)
        assert runner._session_pool is warm_pool
        run_experiments([small_experiment(f"b{i}") for i in range(2)], jobs=2)
        assert runner._session_pool is warm_pool
        assert warm_pool.batches_dispatched == batches + 2

    def test_wider_pool_is_reused_narrower_is_replaced(self, warm_pool):
        assert get_pool(2) is warm_pool  # exact match reuses
        assert get_pool(1) is None  # serial never takes the pool
        assert runner._session_pool is warm_pool  # ... and leaves it alone
        wider = get_pool(3)
        if wider is None:
            pytest.skip("host cannot widen the pool")
        assert wider is not warm_pool  # narrower pool was replaced
        assert get_pool(2) is wider  # a wider pool serves jobs=2 as-is

    def test_generation_advances_per_broadcast(self, warm_pool):
        g1 = warm_pool.broadcast([small_experiment("g1")])
        g2 = warm_pool.broadcast([small_experiment("g2")])
        assert g2 == g1 + 1

    def test_shutdown_pool_is_idempotent(self, warm_pool):
        shutdown_pool()
        assert runner._session_pool is None
        shutdown_pool()  # second call is a no-op, not an error
        assert runner._session_pool is None

    def test_pool_session_scopes_the_pool(self):
        shutdown_pool()
        with pool_session(2) as pool:
            if pool is None:
                pytest.skip("host cannot create process pools")
            assert runner._session_pool is pool
            run_experiments(
                [small_experiment(f"s{i}") for i in range(2)], jobs=2
            )
            assert runner._session_pool is pool
        assert runner._session_pool is None


class TestOrderingAndIdentity:
    def test_results_ordered_despite_uneven_durations(self, warm_pool):
        # First experiment is much slower than the rest: with two workers
        # the short ones complete first, so input order is only preserved
        # if the runner orders by index, not by completion.
        exps = [
            small_experiment("slow", burst_rate_gbps=100.0),
            small_experiment("fast-1"),
            small_experiment("fast-2"),
            small_experiment("fast-3"),
        ]
        summaries = run_experiments(exps, jobs=2)
        assert [s.experiment.name for s in summaries] == [e.name for e in exps]

    def test_warm_pool_fingerprints_match_serial(self, warm_pool):
        exps = [small_experiment(f"fp{i}") for i in range(3)]
        serial = run_experiments(exps, jobs=1)
        pooled = run_experiments(exps, jobs=2)
        assert runner._session_pool is warm_pool
        for ser, par in zip(serial, pooled):
            assert pickle.dumps(ser.fingerprint()) == pickle.dumps(
                par.fingerprint()
            )

    def test_dispatch_note_records_chunksize(self, warm_pool):
        exps = [small_experiment(f"d{i}") for i in range(2)]
        run_experiments(exps, jobs=2)
        assert runner.last_dispatch["mode"] == "warm-pool"
        assert runner.last_dispatch["chunksize"] == _chunksize(2, warm_pool.workers)
        run_experiments(exps, jobs=1)
        assert runner.last_dispatch["mode"] == "serial"


class TestSweepResilienceOnWarmPool:
    def test_crash_is_retried_and_pool_survives(self, warm_pool):
        plan = FaultPlan(specs=(FaultSpec("harness.crash", magnitude=1.0),))
        exps = [
            small_experiment("crashy", server=ServerConfig(
                app="touchdrop", ring_size=128, fault_plan=plan
            )),
            small_experiment("clean"),
        ]
        result = run_sweep(exps, jobs=2, retries=1)
        assert [r.status for r in result.records] == ["retried", "ok"]
        # A crash is an ordinary exception in a worker; it must not cost
        # the session its warm pool.
        assert runner._session_pool is warm_pool

    def test_timeout_discards_the_poisoned_pool(self, warm_pool):
        plan = FaultPlan(specs=(FaultSpec("harness.hang", magnitude=5.0),))
        exps = [
            small_experiment("wedged", server=ServerConfig(
                app="touchdrop", ring_size=128, fault_plan=plan
            )),
        ]
        result = run_sweep(exps, jobs=2, timeout_s=0.5, retries=0)
        assert result.records[0].status == "timeout"
        # The wedged worker still holds a slot: the pool must have been
        # terminated and discarded, not handed to the next caller.
        assert runner._session_pool is not warm_pool


class TestChunksize:
    @pytest.mark.parametrize(
        "tasks,workers,expected",
        [
            (1, 2, 1),  # floor: never zero
            (7, 2, 1),  # fewer than 4 chunks/worker -> singletons
            (8, 2, 1),
            (16, 2, 2),  # ~4 chunks per worker
            (100, 4, 6),
            (1000, 8, 31),
        ],
    )
    def test_adaptive_chunksize(self, tasks, workers, expected):
        assert _chunksize(tasks, workers) == expected
