"""Tests for the banked (channels/banks/open-row) DRAM model."""

import pytest

from repro.mem.dram import BankedDRAM
from repro.mem.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.mem.line import LINE_SIZE
from repro.mem.stats import StatsBundle
from repro.sim import units
from tests.memtxn import cpu_access


def make_dram(**kwargs):
    stats = StatsBundle()
    defaults = dict(channels=2, banks=4, row_bytes=1024, channel_gbps=1e9)
    defaults.update(kwargs)
    return stats, BankedDRAM(stats, **defaults)


class TestGeometry:
    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            make_dram(channels=0)
        with pytest.raises(ValueError):
            make_dram(banks=0)
        with pytest.raises(ValueError):
            make_dram(row_bytes=32)

    def test_consecutive_lines_interleave_channels(self):
        stats, dram = make_dram(channels=2)
        c0, _, _ = dram._locate(0)
        c1, _, _ = dram._locate(LINE_SIZE)
        assert c0 != c1


class TestRowBuffer:
    def test_first_access_is_row_miss(self):
        stats, dram = make_dram()
        dram.read(0, 0)
        assert stats.counters.get("dram_row_misses") == 1
        assert stats.counters.get("dram_row_hits") == 0

    def test_same_row_hits(self):
        stats, dram = make_dram(channels=1)
        dram.read(0, 0)
        dram.read(LINE_SIZE, 0)  # same row (1 KB row = 16 lines)
        assert stats.counters.get("dram_row_hits") == 1

    def test_row_hit_cheaper_than_miss(self):
        stats, dram = make_dram(channels=1)
        miss = dram.read(0, 0)
        hit = dram.read(LINE_SIZE, units.microseconds(1))
        assert hit < miss

    def test_conflicting_row_closes_previous(self):
        stats, dram = make_dram(channels=1, banks=1, row_bytes=1024)
        dram.read(0, 0)  # opens row 0
        dram.read(1024, 0)  # same bank (banks=1), different row
        dram.read(0, 0)  # row 0 was closed -> miss again
        assert stats.counters.get("dram_row_misses") == 3

    def test_row_hit_rate(self):
        stats, dram = make_dram(channels=1)
        for i in range(8):
            dram.read(i * LINE_SIZE, 0)  # streaming within one row
        assert dram.row_hit_rate() == pytest.approx(7 / 8)


class TestChannelContention:
    def test_queueing_on_one_channel(self):
        stats, dram = make_dram(channels=1, channel_gbps=64 * 8 / 100.0)
        # One line per 100 ns of channel time.
        first = dram.read(0, 0)
        second = dram.read(LINE_SIZE, 0)
        assert second > first

    def test_channels_independent(self):
        stats, dram = make_dram(channels=2, channel_gbps=2 * 64 * 8 / 100.0)
        a = dram.read(0, 0)  # channel 0
        b = dram.read(LINE_SIZE, 0)  # channel 1: no queueing behind a
        assert b == pytest.approx(a, rel=0.01)


class TestHierarchyIntegration:
    def test_banked_model_selectable(self):
        h = MemoryHierarchy(
            HierarchyConfig(num_cores=1, l1_enabled=False, dram_model="banked")
        )
        assert isinstance(h.dram, BankedDRAM)
        cpu_access(h, 0, 0x100000, False, 0)
        assert h.dram.reads == 1

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            MemoryHierarchy(HierarchyConfig(num_cores=1, dram_model="quantum"))

    def test_streaming_dma_has_high_row_hit_rate(self):
        """Sequential DMA buffers enjoy row-buffer locality."""
        h = MemoryHierarchy(
            HierarchyConfig(num_cores=1, l1_enabled=False, dram_model="banked")
        )
        for i in range(256):
            h.dram.write(0x100000 + i * LINE_SIZE, 0)
        assert h.dram.row_hit_rate() > 0.8