"""Tests for the seeded fault-injection layer (``repro.faults``).

Three properties carry the subsystem: plans are validated at construction
(a typo fails before the sweep starts), injection is deterministic (same
plan + same experiment => byte-identical fault decisions), and every
injected fault is observable (a typed ``FaultEvent`` on the bus that the
trace recorder and the invariant sanitizer both see).
"""

import pickle

import pytest

from repro.core.policies import ddio, idio
from repro.faults import (
    FAULT_KINDS,
    FAULT_LAYERS,
    FaultEvent,
    FaultPlan,
    FaultSpec,
    standard_plan,
)
from repro.harness.experiment import Experiment, run_experiment
from repro.harness.server import ServerConfig


def faulted_experiment(plan, name="faults-test", policy=None, **server_kwargs):
    server_kwargs.setdefault("app", "touchdrop")
    server_kwargs.setdefault("ring_size", 128)
    exp = Experiment(
        name=name,
        server=ServerConfig(fault_plan=plan, **server_kwargs),
        burst_rate_gbps=25.0,
        traffic="bursty",
    )
    return exp.with_policy(policy) if policy is not None else exp


class TestFaultSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan(specs=(FaultSpec("nic.typo"),))

    def test_every_documented_kind_accepted(self):
        for kind in FAULT_KINDS:
            FaultSpec(kind).validate()

    @pytest.mark.parametrize("bad", [-0.1, 1.1])
    def test_probability_bounds(self, bad):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec("nic.rx_drop_burst", probability=bad).validate()

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError, match="start_us"):
            FaultSpec("mem.dram_spike", start_us=-1.0).validate()

    def test_period_requires_duration(self):
        with pytest.raises(ValueError, match="period_us requires"):
            FaultSpec("mem.dram_spike", period_us=100.0).validate()

    def test_period_must_exceed_duration(self):
        with pytest.raises(ValueError, match="must exceed"):
            FaultSpec(
                "mem.dram_spike", duration_us=50.0, period_us=50.0
            ).validate()

    def test_negative_magnitude_rejected(self):
        with pytest.raises(ValueError, match="magnitude"):
            FaultSpec("pcie.tlp_delay", magnitude=-1.0).validate()

    def test_layer_property(self):
        assert FaultSpec("pcie.tlp_delay").layer == "pcie"
        assert FaultSpec("harness.crash").layer == "harness"


class TestFaultPlan:
    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.is_empty
        assert plan.specs_for("nic") == ()

    def test_list_input_coerced_to_tuple(self):
        plan = FaultPlan(specs=[FaultSpec("nic.rx_drop_burst")])
        assert isinstance(plan.specs, tuple)

    def test_specs_for_preserves_global_index(self):
        plan = FaultPlan(specs=(
            FaultSpec("nic.rx_drop_burst"),
            FaultSpec("mem.dram_spike", magnitude=100.0),
            FaultSpec("nic.desc_wb_jitter", magnitude=50.0),
        ))
        assert [i for i, _ in plan.specs_for("nic")] == [0, 2]
        assert [i for i, _ in plan.specs_for("mem")] == [1]

    def test_scaled_caps_at_one(self):
        plan = FaultPlan(specs=(FaultSpec("pcie.tlp_reorder", probability=0.6),))
        assert plan.scaled(10.0).specs[0].probability == 1.0
        assert plan.scaled(0.5).specs[0].probability == pytest.approx(0.3)

    def test_scaled_zero_disables_everything(self):
        plan = standard_plan("all", intensity=0.0)
        assert all(s.probability == 0.0 for s in plan.specs)

    def test_scaled_rejects_negative_intensity(self):
        with pytest.raises(ValueError, match="intensity"):
            FaultPlan().scaled(-1.0)

    def test_rng_seed_distinct_per_spec_and_plan_seed(self):
        plan_a = FaultPlan(seed=1)
        plan_b = FaultPlan(seed=2)
        assert plan_a.rng_seed(0) != plan_a.rng_seed(1)
        assert plan_a.rng_seed(0) != plan_b.rng_seed(0)

    def test_plan_pickles_inside_server_config(self):
        cfg = ServerConfig(fault_plan=standard_plan("nic", seed=3))
        clone = pickle.loads(pickle.dumps(cfg))
        assert clone.fault_plan == cfg.fault_plan

    def test_fingerprint_key_distinguishes_seeds(self):
        a = standard_plan("nic", seed=1)
        b = standard_plan("nic", seed=2)
        assert a.fingerprint_key() != b.fingerprint_key()


class TestStandardPlan:
    @pytest.mark.parametrize("layer", FAULT_LAYERS)
    def test_per_layer_specs_match_layer(self, layer):
        plan = standard_plan(layer)
        assert not plan.is_empty
        assert all(s.layer == layer for s in plan.specs)

    def test_all_combines_every_layer(self):
        plan = standard_plan("all")
        assert {s.layer for s in plan.specs} == set(FAULT_LAYERS)

    def test_unknown_layer_rejected(self):
        with pytest.raises(ValueError, match="unknown fault layer"):
            standard_plan("disk")


class TestInjection:
    """End-to-end: faults reach the simulation and surface as events."""

    def test_empty_plan_leaves_server_unfaulted(self):
        result = run_experiment(faulted_experiment(FaultPlan()))
        assert result.server.fault_injectors is None
        assert result.server.fault_counts == {}

    @pytest.mark.parametrize("layer", FAULT_LAYERS)
    def test_each_layer_injects_and_counts(self, layer):
        result = run_experiment(faulted_experiment(standard_plan(layer)))
        counts = result.server.fault_counts
        assert counts, f"no faults injected for layer {layer!r}"
        assert all(kind.startswith(layer + ".") for kind in counts)
        assert all(kind in FAULT_KINDS for kind in counts)

    def test_nic_drops_show_up_as_packet_drops(self):
        plan = FaultPlan(specs=(FaultSpec("nic.rx_drop_burst", probability=1.0),))
        clean = run_experiment(faulted_experiment(FaultPlan()))
        faulted = run_experiment(faulted_experiment(plan))
        assert faulted.completed < clean.completed

    def test_meta_corruption_survives_under_idio(self):
        """Corrupted IdioTag bits must degrade steering, never crash."""
        plan = FaultPlan(specs=(FaultSpec("pcie.meta_corrupt", probability=1.0),))
        result = run_experiment(faulted_experiment(plan, policy=idio()))
        assert result.completed > 0
        assert result.server.fault_counts.get("pcie.meta_corrupt", 0) > 0

    def test_faults_recorded_in_chrome_trace_lane(self):
        result = run_experiment(
            faulted_experiment(standard_plan("all"), trace_enabled=True)
        )
        server = result.server
        recorder = server.trace_recorder
        assert recorder is not None
        injected = sum(server.fault_counts.values())
        assert injected > 0
        trace = recorder.to_chrome_trace()
        fault_rows = [e for e in trace["traceEvents"]
                      if e.get("tid") == 7 and e.get("ph") == "i"]
        assert len(fault_rows) == injected
        assert {e["args"]["layer"] for e in fault_rows} <= set(FAULT_LAYERS)

    def test_checked_mode_accepts_declared_faults(self):
        """The sanitizer sees every fault and the structural invariants
        hold even under an all-layer fault schedule."""
        result = run_experiment(
            faulted_experiment(standard_plan("all"), checked_mode=True)
        )
        sanitizer = result.server.sanitizer
        assert sanitizer is not None
        assert sanitizer.violations_raised == 0
        assert sum(sanitizer.fault_events_seen.values()) == (
            sum(result.server.fault_counts.values())
        )

    def test_sanitizer_rejects_mismatched_fault_layer(self):
        from repro.analysis.sanitizer import InvariantSanitizer, InvariantViolation
        from repro.mem.hierarchy import HierarchyConfig, MemoryHierarchy

        sanitizer = InvariantSanitizer(MemoryHierarchy(HierarchyConfig()))
        with pytest.raises(InvariantViolation, match="fault-provenance"):
            sanitizer.on_fault(
                FaultEvent(layer="mem", kind="nic.rx_drop_burst", now=0, detail="")
            )

    def test_sanitizer_rejects_undeclared_fault_kind(self):
        from repro.analysis.sanitizer import InvariantSanitizer, InvariantViolation
        from repro.mem.hierarchy import HierarchyConfig, MemoryHierarchy

        sanitizer = InvariantSanitizer(MemoryHierarchy(HierarchyConfig()))
        sanitizer.register_faults(standard_plan("nic"))
        with pytest.raises(InvariantViolation, match="fault-provenance"):
            sanitizer.on_fault(
                FaultEvent(layer="mem", kind="mem.dram_spike", now=0, detail="")
            )


class TestDeterminism:
    def test_same_plan_same_fingerprint(self):
        a = run_experiment(faulted_experiment(standard_plan("all", seed=5)))
        b = run_experiment(faulted_experiment(standard_plan("all", seed=5)))
        assert a.summary().fingerprint() == b.summary().fingerprint()
        assert a.server.fault_counts == b.server.fault_counts

    def test_different_seed_different_decisions(self):
        a = run_experiment(faulted_experiment(standard_plan("all", seed=1)))
        b = run_experiment(faulted_experiment(standard_plan("all", seed=2)))
        assert a.server.fault_counts != b.server.fault_counts

    def test_fault_counts_participate_in_fingerprint(self):
        clean = run_experiment(faulted_experiment(FaultPlan(), policy=ddio()))
        faulted = run_experiment(
            faulted_experiment(standard_plan("nic"), policy=ddio())
        )
        assert clean.summary().fingerprint() != faulted.summary().fingerprint()
