"""Unit + property tests for replacement policies."""

import pytest
from hypothesis import given, strategies as st

from repro.mem.replacement import (
    LRUPolicy,
    RandomPolicy,
    TreePLRUPolicy,
    make_policy,
)


class TestLRU:
    def test_victim_is_least_recent(self):
        p = LRUPolicy(4, 4)
        for way in (0, 1, 2, 3):
            p.on_access(0, way)
        p.on_access(0, 0)  # refresh way 0
        assert p.victim(0, [0, 1, 2, 3]) == 1

    def test_victim_respects_eligibility(self):
        p = LRUPolicy(1, 4)
        for way in (0, 1, 2, 3):
            p.on_access(0, way)
        # way 0 is the global LRU but not eligible.
        assert p.victim(0, [2, 3]) == 2

    def test_untouched_way_preferred(self):
        p = LRUPolicy(1, 4)
        p.on_access(0, 0)
        p.on_access(0, 1)
        assert p.victim(0, [0, 1, 2]) == 2

    def test_sets_are_independent(self):
        p = LRUPolicy(2, 2)
        p.on_access(0, 0)
        p.on_access(1, 1)
        assert p.victim(1, [0, 1]) == 0

    def test_empty_eligible_raises(self):
        with pytest.raises(ValueError):
            LRUPolicy(1, 2).victim(0, [])

    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=64))
    def test_most_recent_way_never_victim(self, accesses):
        p = LRUPolicy(1, 8)
        for way in range(8):
            p.on_access(0, way)
        for way in accesses:
            p.on_access(0, way)
        assert p.victim(0, list(range(8))) != accesses[-1]


class TestTreePLRU:
    def test_victim_in_eligible_set(self):
        p = TreePLRUPolicy(4, 8)
        for way in range(8):
            p.on_access(0, way)
        assert p.victim(0, [1, 3, 5]) in {1, 3, 5}

    def test_just_accessed_way_avoided_when_possible(self):
        p = TreePLRUPolicy(1, 4)
        p.on_access(0, 2)
        assert p.victim(0, list(range(4))) != 2

    def test_non_power_of_two_assoc(self):
        p = TreePLRUPolicy(1, 12)
        for way in range(12):
            p.on_access(0, way)
        assert 0 <= p.victim(0, list(range(12))) < 12

    @given(
        st.lists(st.integers(min_value=0, max_value=11), min_size=1, max_size=100),
        st.sets(st.integers(min_value=0, max_value=11), min_size=1),
    )
    def test_victim_always_eligible(self, accesses, eligible):
        p = TreePLRUPolicy(1, 12)
        for way in accesses:
            p.on_access(0, way)
        assert p.victim(0, sorted(eligible)) in eligible


class TestRandom:
    def test_deterministic_with_seed(self):
        a = RandomPolicy(1, 8, seed=7)
        b = RandomPolicy(1, 8, seed=7)
        picks_a = [a.victim(0, list(range(8))) for _ in range(20)]
        picks_b = [b.victim(0, list(range(8))) for _ in range(20)]
        assert picks_a == picks_b

    def test_victim_eligible(self):
        p = RandomPolicy(1, 8, seed=1)
        for _ in range(50):
            assert p.victim(0, [2, 5]) in {2, 5}


class TestFactory:
    @pytest.mark.parametrize("name,cls", [("lru", LRUPolicy), ("plru", TreePLRUPolicy), ("random", RandomPolicy)])
    def test_make_policy(self, name, cls):
        assert isinstance(make_policy(name, 4, 4), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_policy("mru", 4, 4)
