"""simlint self-tests: every rule catches its fixture; src/repro stays clean.

The fixture tree (``tests/fixtures/simlint``) holds one known-bad snippet
per rule plus a clean control file.  Each fixture's first line declares
the module it masquerades as (the scope rules key off module names), so
the snippets never have to live inside ``src/repro``.

Whole-program rules (SIM011-SIM015) get fixture *packages* — directories
of interacting modules — linted through :func:`tools.simlint.lint_project`
so the cross-module machinery (import resolution, call graph, taint
summaries) is on the hook, paired with a clean package proving the rule
keys on the hazard and not the shape.
"""

from pathlib import Path

import pytest

from tools.simlint import (
    ALL_RULES,
    PROGRAM_RULES,
    RULES,
    lint_file,
    lint_paths,
    lint_project,
    lint_source,
    module_name_for,
)
from tools.simlint.output import DEFAULT_BASELINE, load_baseline

FIXTURES = Path(__file__).parent / "fixtures" / "simlint"
REPO_SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def _fixture_module(path: Path) -> str:
    header = path.read_text().splitlines()[0]
    assert header.startswith("# simlint-fixture-module:"), path
    return header.split(":", 1)[1].strip()


#: (fixture file, the one rule it must trip, expected violation count).
FIXTURE_CASES = [
    ("sim001_wallclock.py", "SIM001", 3),
    ("sim002_randomness.py", "SIM002", 4),
    ("sim003_set_iteration.py", "SIM003", 4),
    ("sim004_slots.py", "SIM004", 2),
    ("sim005_legacy_wrapper.py", "SIM005", 3),
    ("sim006_subscriber.py", "SIM006", 3),
    ("sim007_units.py", "SIM007", 3),
    ("sim008_numpy.py", "SIM008", 3),
    ("sim009_rack_rng.py", "SIM009", 5),
    ("sim010_cache_write.py", "SIM010", 5),
    ("sim016_tenant_rng.py", "SIM016", 5),
]


@pytest.mark.parametrize("fname,rule,expected", FIXTURE_CASES)
def test_fixture_catches(fname, rule, expected):
    path = FIXTURES / fname
    violations = lint_file(str(path), module=_fixture_module(path))
    assert violations, f"{fname} produced no violations"
    assert {v.rule for v in violations} == {rule}
    assert len(violations) == expected
    for v in violations:
        assert v.render().startswith(str(path))
        assert v.line > 1  # never the header line


def test_every_rule_has_a_fixture():
    assert {rule for _, rule, _ in FIXTURE_CASES} == set(RULES)


def test_clean_fixture_is_clean():
    path = FIXTURES / "clean.py"
    assert lint_file(str(path), module=_fixture_module(path)) == []


def test_sim009_clean_fixture_is_clean():
    """The clean half of the SIM009 pair: per-server streams pass."""
    path = FIXTURES / "sim009_rack_rng_clean.py"
    assert lint_file(str(path), module=_fixture_module(path)) == []


def test_sim010_clean_fixture_is_clean():
    """The clean half of the SIM010 pair: the atomic helper shape passes."""
    path = FIXTURES / "sim010_cache_write_clean.py"
    assert lint_file(str(path), module=_fixture_module(path)) == []


def test_sim016_clean_fixture_is_clean():
    """The clean half of the SIM016 pair: per-tenant streams pass."""
    path = FIXTURES / "sim016_tenant_rng_clean.py"
    assert lint_file(str(path), module=_fixture_module(path)) == []


def test_sim016_scope_gating():
    src = "import random\nx = random.Random(7)\n"
    # A seeded module-level Random is fine outside the tenant tier ...
    assert lint_source(src, "repro.harness.runner") == []
    # ... but is one shared stream for every tenant inside it.
    assert [v.rule for v in lint_source(src, "repro.tenants.sweep")] == ["SIM016"]
    # Seeded, inside a function: the blessed per-tenant-stream shape.
    good = (
        "import random\n"
        "def rng(seed, tenant):\n"
        "    return random.Random(seed + tenant)\n"
    )
    assert lint_source(good, "repro.tenants.sweep") == []


def test_sim010_scope_gating():
    src = "def spill(path, blob):\n    path.write_bytes(blob)\n"
    # Direct writes are fine outside the cache package ...
    assert lint_source(src, "repro.harness.runner") == []
    # ... but bypass the atomic store helper inside it.
    assert [v.rule for v in lint_source(src, "repro.cache.store")] == ["SIM010"]
    # Read-mode opens never trip the rule.
    reads = 'def load(path):\n    return open(path, "rb").read()\n'
    assert lint_source(reads, "repro.cache.store") == []


def test_sim009_scope_gating():
    src = "import random\nx = random.Random(7)\n"
    # A seeded module-level Random is fine outside the rack tier ...
    assert lint_source(src, "repro.harness.runner") == []
    # ... but is one shared stream for every server inside it.
    assert [v.rule for v in lint_source(src, "repro.rack.rack")] == ["SIM009"]
    # Seeded, inside a function: the blessed per-server-stream shape.
    good = "import random\ndef rng(seed, server):\n    return random.Random(seed + server)\n"
    assert lint_source(good, "repro.rack.rack") == []


def test_pragma_suppression():
    src = (
        "import time\n"
        "\n"
        "def f():\n"
        "    return time.time()  # simlint: disable=SIM001\n"
    )
    assert lint_source(src, "repro.sim.fake") == []
    assert lint_source(src.replace("=SIM001", "=all"), "repro.sim.fake") == []
    wrong = src.replace("=SIM001", "=SIM002")
    assert [v.rule for v in lint_source(wrong, "repro.sim.fake")] == ["SIM001"]


def test_scope_gating():
    src = "import time\nt = time.time()\n"
    # Harness code may read the host clock (progress reporting etc.).
    assert lint_source(src, "repro.harness.server") == []
    # Simulation code may not ...
    assert [v.rule for v in lint_source(src, "repro.sim.clock")] == ["SIM001"]
    # ... except the kernel, which owns the events/sec diagnostics.
    assert lint_source(src, "repro.sim.kernel") == []


def test_module_name_for():
    assert module_name_for("src/repro/mem/cache.py") == "repro.mem.cache"
    assert module_name_for("src/repro/sim/__init__.py") == "repro.sim"
    assert module_name_for("tools/bench.py") == "bench"


def test_src_repro_is_simlint_clean():
    """The tree guarantee behind `make analyze`: zero suppressions needed."""
    violations = lint_paths([str(REPO_SRC)])
    assert violations == [], "\n".join(v.render() for v in violations)


# ----------------------------------------------------------------------
# Whole-program rules (SIM011-SIM015)
# ----------------------------------------------------------------------

#: (fixture package, the one rule it must trip, expected violation count).
PROGRAM_FIXTURE_CASES = [
    ("sim011_taint", "SIM011", 4),
    ("sim012_bus", "SIM012", 3),
    ("sim013_digest", "SIM013", 3),
    ("sim014_facade", "SIM014", 4),
    ("sim015_worker", "SIM015", 2),
]


@pytest.mark.parametrize("dirname,rule,expected", PROGRAM_FIXTURE_CASES)
def test_program_fixture_catches(dirname, rule, expected):
    violations = lint_project([str(FIXTURES / dirname)], cache_dir=None)
    assert violations, f"{dirname} produced no violations"
    assert {v.rule for v in violations} == {rule}
    assert len(violations) == expected
    for v in violations:
        assert v.line > 1  # never the fixture-module header line


@pytest.mark.parametrize("dirname", [d for d, _, _ in PROGRAM_FIXTURE_CASES])
def test_program_clean_fixture_is_clean(dirname):
    """Each bad package has a clean twin: the rule keys on the hazard."""
    violations = lint_project([str(FIXTURES / (dirname + "_clean"))], cache_dir=None)
    assert violations == [], "\n".join(v.render() for v in violations)


def test_every_program_rule_has_a_fixture():
    assert {rule for _, rule, _ in PROGRAM_FIXTURE_CASES} == set(PROGRAM_RULES)


def test_rule_tables_are_disjoint_and_complete():
    assert not (set(RULES) & set(PROGRAM_RULES))
    assert set(ALL_RULES) == set(RULES) | set(PROGRAM_RULES)


def test_sim011_cross_module_flow_names_the_route():
    """The wall-clock finding must implicate the helper module it rode in on."""
    violations = lint_project([str(FIXTURES / "sim011_taint")], cache_dir=None)
    wallclock = [v for v in violations if "wall-clock" in v.message]
    assert len(wallclock) == 1
    assert "total_ticks" in wallclock[0].message


def test_program_rules_respect_pragmas(tmp_path):
    src = (
        "import time\n"
        "\n"
        "def fingerprint():\n"
        "    return time.time()\n"
    )
    bad = tmp_path / "thing.py"
    bad.write_text(src)
    assert [v.rule for v in lint_project([str(bad)], cache_dir=None)] == ["SIM011"]
    bad.write_text(src.replace("time.time()", "time.time()  # simlint: disable=SIM011"))
    assert lint_project([str(bad)], cache_dir=None) == []


def test_src_repro_is_clean_under_full_battery():
    """The whole-program acceptance gate: SIM001-SIM015 with zero baseline.

    Both halves matter: the tree reports nothing, *and* the committed
    baseline is empty — no finding is being hidden by a suppression.
    """
    violations = lint_project([str(REPO_SRC)], cache_dir=None)
    assert violations == [], "\n".join(v.render() for v in violations)
    assert load_baseline(DEFAULT_BASELINE) == []
