"""Tests for the queueing/service latency decomposition."""

import pytest

from repro.core.policies import ddio, idio
from repro.harness.experiment import Experiment, run_experiment
from repro.harness.server import ServerConfig
from repro.sim import units


def run(rate, policy=None, ring=128):
    exp = Experiment(
        name="breakdown",
        server=ServerConfig(policy=policy or ddio(), app="touchdrop", ring_size=ring),
        traffic="bursty",
        burst_rate_gbps=rate,
    )
    return run_experiment(exp)


class TestDecomposition:
    def test_components_sum_to_latency(self):
        result = run(50.0)
        for p in result.server.completed_packets():
            assert p.queueing_delay + p.service_time == p.latency

    def test_queueing_includes_nic_visibility_delay(self):
        result = run(50.0)
        nic = result.server.nic
        floor = nic.config.rx_pipeline_delay + nic.config.descriptor_writeback_delay
        for p in result.server.completed_packets():
            assert p.queueing_delay >= floor

    def test_queueing_grows_with_rate(self):
        slow = run(10.0)
        fast = run(100.0)
        assert (
            fast.latency_breakdown_ns()["mean_queueing_ns"]
            > slow.latency_breakdown_ns()["mean_queueing_ns"]
        )

    def test_idio_shrinks_service_time(self):
        """IDIO's gains come from the service component (MLC hits), not
        from the fixed NIC pipeline."""
        base = run(25.0, ddio(), ring=512)
        ours = run(25.0, idio(), ring=512)
        assert (
            ours.latency_breakdown_ns()["mean_service_ns"]
            < base.latency_breakdown_ns()["mean_service_ns"]
        )

    def test_unprocessed_packet_has_no_breakdown(self):
        from repro.net.packet import Packet

        p = Packet()
        assert p.queueing_delay is None
        assert p.service_time is None
