"""Differential tests pinning the vectorized LRU to the reference LRU.

``lru-vec`` must be *exactly* LRU: same victim on every trace, same
tie-break (first eligible way among never-touched ones), same results
whether numpy is present (``VectorizedLRUPolicy``) or absent (the
factory falls back to ``LRUPolicy``).  The hypothesis test drives all
three implementations through random access/evict/victim traces and
requires identical victim choices at every step; the harness-level test
requires a full experiment fingerprint to be byte-identical under the
``replacement="lru-vec"`` knob.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.experiment import Experiment
from repro.harness.runner import run_experiment_summary
from repro.harness.server import ServerConfig
from repro.mem._vec import HAVE_NUMPY, set_indices
from repro.mem.replacement import (
    LRUPolicy,
    ReferenceLRUPolicy,
    make_policy,
)

NUM_SETS = 4
ASSOC = 4

#: One trace step: an access, an evict, or a victim query over a random
#: non-empty eligible subset.
_step = st.one_of(
    st.tuples(
        st.just("access"),
        st.integers(0, NUM_SETS - 1),
        st.integers(0, ASSOC - 1),
    ),
    st.tuples(
        st.just("evict"),
        st.integers(0, NUM_SETS - 1),
        st.integers(0, ASSOC - 1),
    ),
    st.tuples(
        st.just("victim"),
        st.integers(0, NUM_SETS - 1),
        st.lists(
            st.integers(0, ASSOC - 1), min_size=1, max_size=ASSOC, unique=True
        ),
    ),
)


def _replay(policy, trace):
    victims = []
    for step in trace:
        if step[0] == "access":
            policy.on_access(step[1], step[2])
        elif step[0] == "evict":
            policy.on_evict(step[1], step[2])
        else:
            victims.append(policy.victim(step[1], step[2]))
    return victims


class TestDifferential:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(_step, max_size=120))
    def test_lru_vec_matches_reference_on_random_traces(self, trace):
        reference = ReferenceLRUPolicy(NUM_SETS, ASSOC)
        vec = make_policy("lru-vec", NUM_SETS, ASSOC)
        plain = LRUPolicy(NUM_SETS, ASSOC)
        expected = _replay(reference, trace)
        assert _replay(vec, trace) == expected
        assert _replay(plain, trace) == expected

    def test_tie_break_is_first_eligible(self):
        # All ways untouched: every implementation must pick the *first*
        # eligible way, in the eligible list's order.
        for name in ("lru", "lru-ref", "lru-vec"):
            policy = make_policy(name, NUM_SETS, ASSOC)
            assert policy.victim(0, [2, 1, 3]) == 2, name

    def test_victim_requires_eligible_ways(self):
        policy = make_policy("lru-vec", NUM_SETS, ASSOC)
        with pytest.raises(ValueError):
            policy.victim(0, [])


class TestNumpyGating:
    def test_factory_type_matches_numpy_availability(self):
        policy = make_policy("lru-vec", NUM_SETS, ASSOC)
        if HAVE_NUMPY:
            assert type(policy).__name__ == "VectorizedLRUPolicy"
        else:
            assert isinstance(policy, LRUPolicy)

    def test_fallback_without_numpy(self, monkeypatch):
        # Simulate a numpy-free host: the factory must hand back the
        # plain LRU (identical results) rather than fail.
        from repro.mem import replacement

        monkeypatch.setattr(replacement, "HAVE_NUMPY", False)
        policy = replacement.make_policy("lru-vec", NUM_SETS, ASSOC)
        assert type(policy) is LRUPolicy

    def test_set_indices_matches_scalar_path(self):
        line_shift, set_mask = 6, 63
        addrs = [0, 64, 65, 4096, 4160, 1 << 20, (1 << 20) + 64 * 17]
        expected = [(a >> line_shift) & set_mask for a in addrs]
        # Both the short-list scalar branch and the vectorized branch
        # (when numpy is present) must agree with the cache's own math.
        assert set_indices(addrs[:3], line_shift, set_mask) == expected[:3]
        assert set_indices(addrs * 4, line_shift, set_mask) == expected * 4


class TestHarnessKnob:
    def test_lru_vec_fingerprint_identical_to_default(self):
        def summary(server=None):
            kw = {"server": server} if server is not None else {}
            exp = Experiment(
                name="vec-knob",
                burst_rate_gbps=25.0,
                traffic="bursty",
                **kw,
            )
            return run_experiment_summary(exp)

        base = summary(ServerConfig(app="touchdrop", ring_size=128))
        vec = summary(
            ServerConfig(app="touchdrop", ring_size=128, replacement="lru-vec")
        )
        assert pickle.dumps(base.fingerprint()) == pickle.dumps(
            vec.fingerprint()
        )

    def test_replacement_knob_reaches_every_level(self):
        from repro.harness.server import SimulatedServer

        server = SimulatedServer(
            ServerConfig(app="touchdrop", ring_size=128, replacement="lru-ref")
        )
        hierarchy = server.hierarchy
        assert hierarchy.llc.config.replacement == "lru-ref"
        assert all(c.config.replacement == "lru-ref" for c in hierarchy.mlc)
        assert all(
            c.config.replacement == "lru-ref"
            for c in hierarchy.l1
            if c is not None
        )
        # The cache's fused LRU fast path must disengage for non-default
        # policies (it is keyed to the exact LRUPolicy type).
        assert hierarchy.llc.data._lru_rows is None
