"""Tests for the IAT-style dynamic DDIO-way baseline."""

import pytest

from repro.core.iat import IATController
from repro.core.policies import ddio, iat, policy_by_name
from repro.harness.experiment import Experiment, run_experiment
from repro.harness.server import ServerConfig
from repro.mem.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.obs.events import LlcWritebackEvent
from repro.sim import Simulator, units


def make_controller(**kwargs):
    sim = Simulator()
    h = MemoryHierarchy(HierarchyConfig(num_cores=1, l1_enabled=False))
    return sim, h, IATController(sim, h, **kwargs)


class TestControlLoop:
    def test_starts_at_min_ways(self):
        sim, h, ctl = make_controller(min_ways=2, max_ways=6)
        assert ctl.current_ways == 2

    def test_grows_under_leak_pressure(self):
        sim, h, ctl = make_controller(min_ways=2, max_ways=6, grow_threshold=10)

        def leak():
            for _ in range(20):
                h.bus.publish(LlcWritebackEvent(0, sim.now))

        for i in range(3):
            sim.schedule_at(units.microseconds(10 * i) + 1, leak)
        sim.run(until=units.microseconds(31))
        assert ctl.current_ways == 5

    def test_saturates_at_max_ways(self):
        sim, h, ctl = make_controller(
            min_ways=2, max_ways=3, grow_threshold=1, shrink_threshold=0
        )

        def leak():
            for _ in range(10):
                h.bus.publish(LlcWritebackEvent(0, sim.now))

        for i in range(5):
            sim.schedule_at(units.microseconds(10 * i) + 1, leak)
        sim.run(until=units.microseconds(51))
        assert ctl.current_ways == 3

    def test_shrinks_when_quiet(self):
        sim, h, ctl = make_controller(min_ways=2, max_ways=6, grow_threshold=10)
        sim.schedule_at(
            1, lambda: [h.bus.publish(LlcWritebackEvent(0, sim.now)) for _ in range(20)]
        )
        sim.run(until=units.microseconds(11))
        assert ctl.current_ways == 3
        sim.run(until=units.microseconds(60))  # quiet intervals
        assert ctl.current_ways == 2

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            make_controller(min_ways=0)
        with pytest.raises(ValueError):
            make_controller(min_ways=5, max_ways=4)
        with pytest.raises(ValueError):
            make_controller(grow_threshold=1, shrink_threshold=2)

    def test_stop(self):
        sim, h, ctl = make_controller()
        ctl.stop()
        sim.run(until=units.microseconds(100))  # no infinite task


class TestPolicyIntegration:
    def test_policy_table(self):
        p = policy_by_name("iat")
        assert p.dynamic_ddio_ways
        assert not p.needs_controller

    def test_iat_cannot_combine_with_idio(self):
        from repro.core.policies import PolicyConfig

        with pytest.raises(ValueError):
            PolicyConfig(name="x", dynamic_ddio_ways=True, direct_dram=True)

    def test_server_wires_iat_controller(self):
        from repro.harness.server import SimulatedServer

        server = SimulatedServer(ServerConfig(policy=iat()))
        assert server.iat_controller is not None
        assert server.controller is None

    def test_iat_reduces_llc_writebacks_but_not_mlc(self):
        """The paper's S1 critique: dynamic DDIO-way policies cannot use
        the MLC — they trim the DMA leak but dead-buffer MLC writebacks
        are untouched."""

        def run(policy):
            exp = Experiment(
                name="iat-cmp",
                server=ServerConfig(policy=policy, app="touchdrop", ring_size=512),
                traffic="bursty",
                burst_rate_gbps=100.0,
            )
            return run_experiment(exp)

        base = run(ddio())
        dyn = run(iat())
        assert dyn.window.llc_writebacks < base.window.llc_writebacks
        assert dyn.window.mlc_writebacks == pytest.approx(
            base.window.mlc_writebacks, rel=0.1
        )
