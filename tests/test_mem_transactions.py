"""The unified transaction entry point: access(txn), hop records, wrappers.

Covers the egress DMA (``pcie_read``) and invalidate maintenance paths
through :meth:`MemoryHierarchy.access` explicitly — including the hop
records each one produces — plus the transaction/wrapper equivalences the
refactor must preserve.
"""

import pytest

from repro.mem import (
    CPU_LOAD,
    CPU_STORE,
    DMA_READ,
    DMA_WRITE,
    INVALIDATE,
    PREFETCH_FILL,
    Hop,
    MemoryTransaction,
    cpu_access_txn,
)
from repro.mem.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.mem.line import LINE_SIZE
from tests.memtxn import cpu_access, invalidate, pcie_read, pcie_write


def make_hierarchy(num_cores=2, record_hops=True):
    h = MemoryHierarchy(HierarchyConfig(num_cores=num_cores, l1_enabled=False))
    h.record_hops = record_hops
    return h


ADDR = 0x100000


def hops_of(txn):
    return [(hop.component, hop.action) for hop in txn.hops]


class TestTransactionObject:
    def test_addr_normalized_to_line(self):
        txn = MemoryTransaction(CPU_LOAD, ADDR + 17, 0)
        assert txn.addr == ADDR

    def test_origin_and_is_write(self):
        assert MemoryTransaction(DMA_WRITE, ADDR, 0).origin == "io"
        assert MemoryTransaction(PREFETCH_FILL, ADDR, 0).origin == "prefetcher"
        assert MemoryTransaction(CPU_STORE, ADDR, 0).is_write
        assert not MemoryTransaction(DMA_READ, ADDR, 0).is_write

    def test_cpu_access_txn_constructor(self):
        txn = cpu_access_txn(1, ADDR, True, 42)
        assert (txn.kind, txn.core, txn.now) == (CPU_STORE, 1, 42)

    def test_unknown_kind_rejected(self):
        h = make_hierarchy()
        with pytest.raises(ValueError, match="unknown transaction kind"):
            h.access(MemoryTransaction("teleport", ADDR, 0))

    def test_hop_latencies_sum_to_txn_latency(self):
        h = make_hierarchy()
        txn = cpu_access_txn(0, ADDR, False, 0)
        h.access(txn)
        assert txn.level == "dram"
        assert sum(hop.latency for hop in txn.hops) == txn.latency

    def test_hops_empty_when_recording_disabled(self):
        h = make_hierarchy(record_hops=False)
        txn = cpu_access_txn(0, ADDR, False, 0)
        h.access(txn)
        assert txn.hops == []
        assert txn.latency > 0


class TestEgressDmaPath:
    """pcie_read (NIC TX) through the typed entry point."""

    def test_llc_hit_hops(self):
        h = make_hierarchy()
        h.access(MemoryTransaction(DMA_WRITE, ADDR, 0))  # DDIO fill
        txn = MemoryTransaction(DMA_READ, ADDR, 10)
        h.access(txn)
        assert txn.level == "llc"
        assert hops_of(txn) == [("llc", "hit")]
        assert txn.latency == h.llc.config.latency

    def test_miss_goes_to_dram(self):
        h = make_hierarchy()
        txn = MemoryTransaction(DMA_READ, ADDR, 0)
        h.access(txn)
        assert txn.level == "dram"
        assert hops_of(txn) == [("llc", "miss"), ("dram", "read")]
        assert txn.latency > h.llc.config.latency
        assert txn.hops[1].latency > 0

    def test_dirty_private_copy_written_back_first(self):
        """Fig. 3 right: the egress read forces the MLC copy out via LLC."""
        h = make_hierarchy()
        cpu_access(h, 0, ADDR, True, 0)  # dirty in core 0's MLC
        txn = MemoryTransaction(DMA_READ, ADDR, 10)
        h.access(txn)
        assert hops_of(txn) == [
            ("mlc", "evict"),
            ("llc", "writeback"),
            ("llc", "hit"),
        ]
        assert txn.level == "llc"
        assert h.stats.counters.get("mlc_writebacks") == 1
        assert h.where(ADDR)["mlc"] == []

    def test_wrapper_matches_transaction(self):
        a = make_hierarchy(record_hops=False)
        b = make_hierarchy(record_hops=False)
        pcie_write(a, ADDR, 0)
        pcie_write(b, ADDR, 0)
        txn = MemoryTransaction(DMA_READ, ADDR, 10)
        b.access(txn)
        assert pcie_read(a, ADDR, 10) == txn.latency
        assert a.stats.counters.snapshot() == b.stats.counters.snapshot()


class TestInvalidatePath:
    """Invalidate-without-writeback (M1) through the typed entry point."""

    def test_drops_private_and_llc_copies(self):
        h = make_hierarchy()
        h.access(MemoryTransaction(DMA_WRITE, ADDR, 0))
        cpu_access(h, 0, ADDR, True, 1)  # dirty private copy
        txn = MemoryTransaction(INVALIDATE, ADDR, 10, core=0)
        h.access(txn)
        assert txn.level == "invalidated"
        assert hops_of(txn) == [("mlc", "drop")]
        where = h.where(ADDR)
        assert where["mlc"] == [] and where["llc"] is False
        # The whole point: no data ever moved to DRAM.
        assert h.stats.counters.get("dram_writes") == 0

    def test_llc_only_copy_dropped(self):
        h = make_hierarchy()
        h.access(MemoryTransaction(DMA_WRITE, ADDR, 0))  # LLC copy only
        txn = MemoryTransaction(INVALIDATE, ADDR, 10, core=0)
        h.access(txn)
        assert txn.level == "absent"  # nothing private was held
        assert hops_of(txn) == [("llc", "drop")]
        assert h.stats.counters.get("self_invalidations_llc") == 1

    def test_private_scope_leaves_llc_copy(self):
        h = make_hierarchy()
        h.access(MemoryTransaction(DMA_WRITE, ADDR, 0))
        cpu_access(h, 0, ADDR, False, 1)
        txn = MemoryTransaction(INVALIDATE, ADDR, 10, core=0, scope="private")
        h.access(txn)
        assert txn.level == "invalidated"
        assert hops_of(txn) == [("mlc", "drop")]

    def test_unknown_scope_rejected(self):
        h = make_hierarchy()
        with pytest.raises(ValueError, match="unknown invalidate scope"):
            h.access(MemoryTransaction(INVALIDATE, ADDR, 0, core=0, scope="bogus"))

    def test_wrapper_matches_transaction(self):
        a = make_hierarchy(record_hops=False)
        b = make_hierarchy(record_hops=False)
        for h in (a, b):
            pcie_write(h, ADDR, 0)
            cpu_access(h, 0, ADDR, True, 1)
        invalidate(a, 0, ADDR, 10)
        b.access(MemoryTransaction(INVALIDATE, ADDR, 10, core=0))
        assert a.stats.counters.snapshot() == b.stats.counters.snapshot()
        assert a.where(ADDR) == b.where(ADDR)


class TestDmaWriteHops:
    def test_ddio_fill_hop(self):
        h = make_hierarchy()
        txn = MemoryTransaction(DMA_WRITE, ADDR, 0)
        h.access(txn)
        assert ("llc", "fill") in hops_of(txn)
        assert txn.level == "llc"

    def test_ddio_update_hop(self):
        h = make_hierarchy()
        h.access(MemoryTransaction(DMA_WRITE, ADDR, 0))
        txn = MemoryTransaction(DMA_WRITE, ADDR, 5)
        h.access(txn)
        assert hops_of(txn) == [("llc", "update")]

    def test_direct_dram_hop(self):
        h = make_hierarchy()
        txn = MemoryTransaction(DMA_WRITE, ADDR, 0, placement="dram")
        h.access(txn)
        assert txn.level == "dram"
        assert hops_of(txn) == [("dram", "write")]

    def test_mlc_invalidation_hop(self):
        h = make_hierarchy()
        cpu_access(h, 0, ADDR, False, 0)  # line lands in core 0's MLC
        txn = MemoryTransaction(DMA_WRITE, ADDR, 5)
        h.access(txn)
        assert hops_of(txn)[0] == ("mlc", "inval")

    def test_unknown_placement_rejected(self):
        h = make_hierarchy()
        with pytest.raises(ValueError, match="unknown placement"):
            h.access(MemoryTransaction(DMA_WRITE, ADDR, 0, placement="moon"))


class TestCpuPathHops:
    def test_miss_path_components(self):
        h = make_hierarchy()
        txn = cpu_access_txn(0, ADDR, False, 0)
        h.access(txn)
        assert hops_of(txn) == [
            ("mlc", "miss"),
            ("llc", "miss"),
            ("dram", "read"),
            ("mlc", "fill"),
        ]

    def test_hit_after_fill(self):
        h = make_hierarchy()
        cpu_access(h, 0, ADDR, False, 0)
        txn = cpu_access_txn(0, ADDR, False, 1)
        h.access(txn)
        assert txn.level == "mlc"
        assert hops_of(txn) == [("mlc", "hit")]

    def test_hop_latency_by_component(self):
        h = make_hierarchy()
        txn = cpu_access_txn(0, ADDR, False, 0)
        h.access(txn)
        split = txn.hop_latency_by_component()
        assert split["dram"] > 0
        assert sum(split.values()) == txn.latency


class TestHop:
    def test_is_named_tuple(self):
        hop = Hop("llc", "fill", 7)
        assert hop.component == "llc"
        assert tuple(hop) == ("llc", "fill", 7)
