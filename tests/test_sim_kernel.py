"""Unit + property tests for the discrete-event kernel."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import Event, EventQueue, PeriodicTask, SimulationError, Simulator


class TestEventQueue:
    def test_pop_returns_earliest(self):
        q = EventQueue()
        q.push(Event(10, 1, lambda: None))
        q.push(Event(5, 2, lambda: None))
        assert q.pop().time == 5

    def test_fifo_for_equal_times(self):
        q = EventQueue()
        first = Event(5, 1, lambda: None, "first")
        second = Event(5, 2, lambda: None, "second")
        q.push(second)
        q.push(first)
        assert q.pop().name == "first"

    def test_cancelled_events_skipped(self):
        q = EventQueue()
        e1 = Event(1, 1, lambda: None)
        e2 = Event(2, 2, lambda: None)
        q.push(e1)
        q.push(e2)
        e1.cancel()
        assert q.pop() is e2

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        e1 = Event(1, 1, lambda: None)
        q.push(e1)
        e1.cancel()
        assert q.peek_time() is None

    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=200))
    def test_pop_order_is_sorted(self, times):
        q = EventQueue()
        for i, t in enumerate(times):
            q.push(Event(t, i, lambda: None))
        popped = []
        while len(q):
            try:
                popped.append(q.pop().time)
            except IndexError:
                break
        assert popped == sorted(popped)


class TestSimulator:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule_at(20, lambda: log.append("b"))
        sim.schedule_at(10, lambda: log.append("a"))
        sim.run()
        assert log == ["a", "b"]

    def test_now_advances_with_events(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(42, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [42]
        assert sim.now == 42

    def test_schedule_in_past_raises(self):
        sim = Simulator()
        sim.schedule_at(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5, lambda: None)

    def test_negative_delay_raises(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_after(-1, lambda: None)

    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        log = []
        sim.schedule_at(10, lambda: log.append(1))
        sim.schedule_at(100, lambda: log.append(2))
        sim.run(until=50)
        assert log == [1]
        assert sim.now == 50

    def test_run_until_advances_clock_on_empty_queue(self):
        sim = Simulator()
        sim.run(until=123)
        assert sim.now == 123

    def test_events_scheduled_during_run_fire(self):
        sim = Simulator()
        log = []

        def chain():
            log.append(sim.now)
            if sim.now < 30:
                sim.schedule_after(10, chain)

        sim.schedule_at(10, chain)
        sim.run()
        assert log == [10, 20, 30]

    def test_max_events_limits_execution(self):
        sim = Simulator()
        log = []
        for t in range(5):
            sim.schedule_at(t + 1, lambda t=t: log.append(t))
        sim.run(max_events=3)
        assert log == [0, 1, 2]

    def test_events_fired_counter(self):
        sim = Simulator()
        for t in range(4):
            sim.schedule_at(t, lambda: None)
        sim.run()
        assert sim.events_fired == 4

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        log = []
        ev = sim.schedule_at(10, lambda: log.append("x"))
        ev.cancel()
        sim.run()
        assert log == []

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def bad():
            sim.run()

        sim.schedule_at(1, bad)
        with pytest.raises(SimulationError):
            sim.run()

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=100))
    def test_execution_times_monotone(self, times):
        sim = Simulator()
        seen = []
        for t in times:
            sim.schedule_at(t, lambda: seen.append(sim.now))
        sim.run()
        assert seen == sorted(seen)
        assert len(seen) == len(times)


class TestPeriodicTask:
    def test_fires_every_period(self):
        sim = Simulator()
        log = []
        PeriodicTask(sim, 10, lambda: log.append(sim.now))
        sim.run(until=35)
        assert log == [10, 20, 30]

    def test_start_offset(self):
        sim = Simulator()
        log = []
        PeriodicTask(sim, 10, lambda: log.append(sim.now), start_offset=0)
        sim.run(until=25)
        assert log == [0, 10, 20]

    def test_stop_halts_firing(self):
        sim = Simulator()
        log = []
        task = PeriodicTask(sim, 10, lambda: log.append(sim.now))
        sim.schedule_at(25, task.stop)
        sim.run(until=100)
        assert log == [10, 20]

    def test_nonpositive_period_rejected(self):
        with pytest.raises(SimulationError):
            PeriodicTask(Simulator(), 0, lambda: None)
