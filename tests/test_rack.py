"""Rack tier tests: config validation, sweep determinism, and the fold.

The acceptance bar for the rack tier is the fingerprint identity: a
serial sweep and a warm-pool-sharded sweep of the same seeded rack must
produce byte-identical rack fingerprints, with per-server and aggregate
percentiles present in the summary.
"""

import pytest

from repro.core.policies import idio
from repro.harness.runner import shutdown_pool
from repro.obs.events import ServerCompletedEvent, ServerLaneSeries
from repro.obs.trace import RackTraceRecorder
from repro.rack import (
    RACK_TRAFFIC_KINDS,
    RackConfig,
    RackSummary,
    SimulatedRack,
    run_rack,
    server_rng,
)


def small_config(**overrides):
    defaults = dict(
        num_servers=4, total_flows=1024, offered_gbps=40.0, duration_us=50.0
    )
    defaults.update(overrides)
    return RackConfig(**defaults)


class TestRackConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_servers": 0},
            {"total_flows": 0},
            {"steering": "toeplitz"},
            {"traffic": "bursty"},
            {"offered_gbps": 0.0},
            {"duration_us": -1.0},
            {"diurnal_peak_ratio": 0.5},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            small_config(**kwargs)

    def test_rack_traffic_kinds_exclude_bursty(self):
        assert "bursty" not in RACK_TRAFFIC_KINDS

    def test_with_policy(self):
        config = small_config().with_policy(idio())
        assert config.server.policy.name == "idio"
        assert config.num_servers == 4

    def test_flows_hint(self):
        assert small_config().flows_hint() == 256


class TestServerRng:
    def test_streams_decorrelated_and_reproducible(self):
        a = server_rng(0, 0).getrandbits(32)
        assert server_rng(0, 0).getrandbits(32) == a
        assert server_rng(0, 1).getrandbits(32) != a
        assert server_rng(1, 0).getrandbits(32) != a

    def test_negative_server_rejected(self):
        with pytest.raises(ValueError):
            server_rng(0, -1)


class TestSimulatedRack:
    def test_flow_counts_cover_population(self):
        rack = SimulatedRack(small_config())
        assert sum(rack.flow_counts) == 1024
        assert len(rack.flow_counts) == 4

    def test_experiments_one_per_server(self):
        rack = SimulatedRack(small_config())
        exps = rack.experiments()
        assert len(exps) == 4
        assert [e.name for e in exps] == [f"rack-s{i:02d}" for i in range(4)]
        # Per-server traffic seeds come from distinct seeded streams.
        seeds = {e.traffic_seed for e in exps}
        assert len(seeds) == 4

    def test_rate_split_follows_flow_share(self):
        config = small_config()
        rack = SimulatedRack(config)
        exps = rack.experiments()
        per_nf_total = sum(
            e.steady_rate_gbps_per_nf * config.server.num_nf_cores for e in exps
        )
        assert per_nf_total == pytest.approx(config.offered_gbps)

    def test_zero_flow_server_gets_idle_experiment(self):
        # 8 servers, 4 flows under rendezvous: some servers draw nothing.
        config = small_config(
            num_servers=8, total_flows=4, steering="rendezvous"
        )
        rack = SimulatedRack(config)
        assert 0 in rack.flow_counts
        idle = rack.server_experiment(rack.flow_counts.index(0))
        assert idle.steady_duration == 0

    def test_with_checked_servers(self):
        rack = SimulatedRack(small_config()).with_checked_servers()
        assert rack.config.server.checked_mode

    def test_fold_rejects_count_mismatch(self):
        rack = SimulatedRack(small_config())
        with pytest.raises(ValueError):
            rack.fold([])


class TestRackSweep:
    def test_serial_matches_pool_sharded(self):
        """The acceptance criterion: N>=4 servers, serial vs warm-pool."""
        config = small_config(num_servers=4)
        try:
            serial = run_rack(config, jobs=1)
            sharded = run_rack(config, jobs=4)
        finally:
            shutdown_pool()
        assert serial.fingerprint == sharded.fingerprint
        assert [l.digest for l in serial.lanes] == [
            l.digest for l in sharded.lanes
        ]

    def test_summary_shape(self):
        summary = run_rack(small_config())
        assert isinstance(summary, RackSummary)
        assert len(summary.lanes) == 4
        assert summary.completed == sum(l.completed for l in summary.lanes)
        assert summary.offered_packets == sum(l.offered for l in summary.lanes)
        # Percentiles present per server and in aggregate.
        for lane in summary.lanes:
            assert lane.p50_us is not None
            assert lane.p95_us is not None
            assert lane.p99_us is not None
        assert summary.p50_us is not None
        assert summary.p50_us <= summary.p95_us <= summary.p99_us
        assert len(summary.fingerprint) == 64

    def test_render_and_json(self):
        summary = run_rack(small_config(num_servers=2, total_flows=256))
        text = summary.render()
        assert "s00" in text and "s01" in text and "rack" in text
        blob = summary.to_json()
        assert blob["num_servers"] == 2
        assert len(blob["servers"]) == 2
        assert blob["fingerprint"] == summary.fingerprint
        assert "p99" in blob["aggregate"]["percentiles_us"]

    def test_seed_changes_fingerprint(self):
        a = run_rack(small_config(seed=0))
        b = run_rack(small_config(seed=1))
        assert a.fingerprint != b.fingerprint

    def test_diurnal_profile_runs(self):
        summary = run_rack(
            small_config(num_servers=2, total_flows=256, traffic="diurnal")
        )
        assert summary.completed > 0

    def test_checked_mode_rack(self):
        config = small_config(num_servers=2, total_flows=256)
        rack = SimulatedRack(config).with_checked_servers()
        summary = rack.run()
        assert summary.completed > 0


class TestRackLanes:
    def test_completion_events_always_published(self):
        rack = SimulatedRack(small_config(num_servers=2, total_flows=256))
        completed = []
        rack.bus.subscribe(ServerCompletedEvent, completed.append)
        summary = rack.run()
        assert [e.server for e in completed] == [0, 1]
        assert [e.fingerprint for e in completed] == [
            l.digest for l in summary.lanes
        ]

    def test_lane_series_only_when_subscribed(self):
        config = small_config(num_servers=2, total_flows=256)
        rack = SimulatedRack(config)
        series = []
        rack.bus.subscribe(ServerLaneSeries, series.append)
        rack.run()
        assert series, "no lane series published despite a subscriber"
        assert {s.server for s in series} == {0, 1}
        for s in series:
            assert all(len(point) == 2 for point in s.points)

    def test_trace_recorder_renders_per_server_processes(self, tmp_path):
        rack = SimulatedRack(small_config(num_servers=2, total_flows=256))
        recorder = RackTraceRecorder()
        recorder.attach(rack.bus)
        rack.run()
        out = tmp_path / "rack-trace.json"
        count = recorder.export(str(out))
        assert count > 0
        import json

        blob = json.loads(out.read_text())
        names = {
            e["args"]["name"]
            for e in blob["traceEvents"]
            if e.get("name") == "process_name"
        }
        assert {"server-0", "server-1"} <= names
