"""System-level property tests: conservation laws over random configs.

Hypothesis draws (policy, rate, ring size, app) tuples; every run must
respect the accounting invariants regardless of configuration.  These
are the strongest regression guards in the suite — any bookkeeping bug
anywhere in the pipeline breaks one of them.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.policies import extended_policies
from repro.harness.experiment import Experiment, run_experiment
from repro.harness.server import ServerConfig
from repro.mem.line import num_lines
from repro.nic.descriptor import DESCRIPTOR_BYTES


configs = st.fixed_dictionaries(
    {
        "policy": st.sampled_from(sorted(set(extended_policies()) - {"cachedirector"})),
        "rate": st.sampled_from([25.0, 50.0, 100.0]),
        "ring": st.sampled_from([32, 64]),
        "app": st.sampled_from(["touchdrop", "l2fwd", "l2fwd-payload-drop"]),
        "packet_bytes": st.sampled_from([256, 1024, 1514]),
    }
)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(configs)
def test_conservation_invariants(cfg):
    policy = extended_policies()[cfg["policy"]]
    exp = Experiment(
        name="prop",
        server=ServerConfig(
            policy=policy,
            app=cfg["app"],
            ring_size=cfg["ring"],
            packet_bytes=cfg["packet_bytes"],
        ),
        traffic="bursty",
        burst_rate_gbps=cfg["rate"],
    )
    result = run_experiment(exp)
    server = result.server

    # 1. Packet conservation.
    assert result.rx_packets + result.rx_drops == result.offered_packets
    assert result.completed == result.rx_packets

    # 2. Ring conservation: everything freed after drain.
    for queue in server.nic.queues.values():
        assert queue.ring.occupancy() == 0

    # 3. DMA line accounting: data lines + descriptor writebacks, plus
    #    class-1 lines that went straight to DRAM, equals total inbound
    #    transactions.
    lines = num_lines(cfg["packet_bytes"])
    desc_lines = DESCRIPTOR_BYTES // 64
    expected = result.rx_packets * (lines + desc_lines)
    direct = server.stats.counters.get("direct_dram_writes")
    pcie = server.stats.counters.get("pcie_writes")
    # TX completions (L2Fwd with TX rings) add descriptor writebacks.
    tx_completions = sum(e.packets_sent for e in server.nic.tx_engines.values())
    assert pcie == expected + tx_completions * desc_lines
    assert direct <= pcie

    # 4. Non-inclusive single-copy invariant on every packet buffer line.
    for queue in server.nic.queues.values():
        for desc in queue.ring.descriptors[: min(8, queue.ring.size)]:
            addr = desc.buffer_addr
            in_llc = addr in server.hierarchy.llc
            in_mlc = any(
                addr in server.hierarchy.mlc[c]
                for c in range(server.hierarchy.config.num_cores)
            )
            assert not (in_llc and in_mlc)

    # 5. Every latency is positive and bounded by the run length.
    for lat in result.latencies_ns:
        assert 0 < lat < 1e9
