"""Unit tests for the non-inclusive LLC and snoop-filter directory."""

import pytest

from repro.mem.cache import CacheConfig
from repro.mem.line import LINE_SIZE, CacheLine
from repro.mem.llc import NonInclusiveLLC, SnoopFilterDirectory
from repro.mem.stats import StatsBundle


def make_llc(assoc=4, sets=4, ddio_ways=2, **kwargs):
    cfg = CacheConfig("llc", sets * assoc * LINE_SIZE, assoc, latency=1)
    return NonInclusiveLLC(cfg, StatsBundle(), ddio_ways=ddio_ways, **kwargs)


def addr_in_set(llc, set_idx, tag):
    return (tag * llc.data.num_sets + set_idx) * LINE_SIZE


class TestDirectory:
    def test_add_and_owners(self):
        d = SnoopFilterDirectory()
        d.add(0, 1)
        d.add(0, 2)
        assert d.owners(0) == {1, 2}
        assert 0 in d

    def test_remove_single_owner(self):
        d = SnoopFilterDirectory()
        d.add(64, 0)
        d.add(64, 1)
        d.remove(64, 0)
        assert d.owners(64) == {1}

    def test_remove_last_owner_drops_entry(self):
        d = SnoopFilterDirectory()
        d.add(64, 0)
        d.remove(64, 0)
        assert 64 not in d
        assert len(d) == 0

    def test_remove_whole_entry(self):
        d = SnoopFilterDirectory()
        d.add(64, 0)
        d.add(64, 1)
        d.remove(64)
        assert 64 not in d

    def test_remove_unknown_is_noop(self):
        d = SnoopFilterDirectory()
        d.remove(128)  # must not raise

    def test_capacity_eviction_is_lru(self):
        d = SnoopFilterDirectory(capacity=2)
        d.add(0, 0)
        d.add(64, 0)
        d.add(0, 0)  # refresh
        evicted = d.add(128, 0)
        assert [e.addr for e in evicted] == [64]
        assert 0 in d and 128 in d

    def test_unbounded_never_evicts(self):
        d = SnoopFilterDirectory()
        for i in range(1000):
            assert d.add(i * 64, 0) == []
        assert len(d) == 1000


class TestDDIOWayPartition:
    def test_io_fills_limited_to_ddio_ways(self):
        llc = make_llc(assoc=4, sets=1, ddio_ways=2)
        now = 0
        # Three IO fills into a set with 2 DDIO ways: third evicts the first.
        a0, a1, a2 = (addr_in_set(llc, 0, t) for t in range(3))
        assert llc.fill_io(CacheLine(a0, dirty=True), now) is None
        assert llc.fill_io(CacheLine(a1, dirty=True), now) is None
        victim = llc.fill_io(CacheLine(a2, dirty=True), now)
        assert victim is not None and victim.addr == a0

    def test_io_fill_never_evicts_cpu_lines_outside_ddio_ways(self):
        llc = make_llc(assoc=4, sets=1, ddio_ways=2)
        cpu_addr = addr_in_set(llc, 0, 10)
        llc.fill_cpu(CacheLine(cpu_addr), 0)
        for t in range(6):
            llc.fill_io(CacheLine(addr_in_set(llc, 0, t), dirty=True), 0)
        assert cpu_addr in llc

    def test_cpu_fill_prefers_non_ddio_ways(self):
        llc = make_llc(assoc=4, sets=1, ddio_ways=2)
        llc.fill_cpu(CacheLine(addr_in_set(llc, 0, 0)), 0)
        set_idx, way = llc.data._where[addr_in_set(llc, 0, 0)]
        assert way >= llc.ddio_ways

    def test_cpu_fill_can_spill_into_ddio_ways_when_set_full(self):
        llc = make_llc(assoc=4, sets=1, ddio_ways=2)
        for t in range(3):
            llc.fill_cpu(CacheLine(addr_in_set(llc, 0, t)), 0)
        # Ways 2,3 full; third CPU line went into a DDIO way.
        ways = {llc.data._where[addr_in_set(llc, 0, t)][1] for t in range(3)}
        assert ways & {0, 1}

    def test_invalid_ddio_ways_rejected(self):
        with pytest.raises(ValueError):
            make_llc(assoc=4, ddio_ways=0)
        with pytest.raises(ValueError):
            make_llc(assoc=4, ddio_ways=5)

    def test_io_occupancy_counts_io_lines(self):
        llc = make_llc()
        llc.fill_io(CacheLine(0, dirty=True), 0)
        llc.fill_cpu(CacheLine(64), 0)
        assert llc.io_occupancy() == 1


class TestCATMasks:
    def test_core_mask_restricts_fills(self):
        llc = make_llc(assoc=4, sets=1)
        llc.set_core_way_mask(0, [3])
        a0, a1 = addr_in_set(llc, 0, 0), addr_in_set(llc, 0, 1)
        llc.fill_cpu(CacheLine(a0), 0, core=0)
        victim = llc.fill_cpu(CacheLine(a1), 0, core=0)
        assert victim is not None and victim.addr == a0

    def test_unmasked_core_uses_full_order(self):
        llc = make_llc(assoc=4, sets=1)
        llc.set_core_way_mask(0, [3])
        # Core 1 has no mask: it can use the other ways freely.
        for t in range(3):
            assert llc.fill_cpu(CacheLine(addr_in_set(llc, 0, t)), 0, core=1) is None

    def test_empty_mask_rejected(self):
        with pytest.raises(ValueError):
            make_llc().set_core_way_mask(0, [])

    def test_out_of_range_mask_rejected(self):
        with pytest.raises(ValueError):
            make_llc(assoc=4).set_core_way_mask(0, [4])


class TestUpdateInPlace:
    def test_existing_line_updated_not_reallocated(self):
        llc = make_llc(assoc=4, sets=1)
        addr = addr_in_set(llc, 0, 0)
        llc.fill_cpu(CacheLine(addr), 0)  # lands in a non-DDIO way
        _, way_before = llc.data._where[addr]
        llc.fill_io(CacheLine(addr, dirty=True), 0)  # in-place update
        _, way_after = llc.data._where[addr]
        assert way_before == way_after
        assert llc.peek(addr).dirty
