"""Smoke tests for every figure/extension harness entry point.

Each harness function runs here at tiny scale (small rings, short
windows, few sweep points) — these guard the orchestration code paths so
the full-scale benchmarks never fail on plumbing.  Shape assertions live
in benchmarks/; here we only check structure.
"""

import pytest

from repro.harness import extensions, figures
from repro.harness.figures import FigureReport


def check_report(report, expected_figure):
    assert isinstance(report, FigureReport)
    assert report.figure == expected_figure
    assert report.rows, "no rows produced"
    assert report.text, "no printable report"
    assert report.results, "no results attached"


class TestFigureHarness:
    def test_fig4(self):
        report = figures.fig4(
            ring_sizes=(64,),
            loads_gbps_per_nf={"high": 10.0},
            duration_us=200.0,
            include_1way=False,
            max_duration_us=400.0,
        )
        check_report(report, "fig4")
        assert {r["ring"] for r in report.rows} == {64}

    def test_fig5(self):
        report = figures.fig5(ring_size=64, num_bursts=2, burst_period_ms=0.5)
        check_report(report, "fig5")

    def test_fig9(self):
        report = figures.fig9(
            burst_rates=(100.0,), ring_size=64, policy_names=("ddio", "idio")
        )
        check_report(report, "fig9")
        assert {r["policy"] for r in report.rows} == {"ddio", "idio"}

    def test_fig10(self):
        report = figures.fig10(
            burst_rates=(100.0,),
            ring_size=64,
            include_static=False,
            include_corun=False,
        )
        check_report(report, "fig10")
        assert all("mlc_writebacks" in r for r in report.rows)

    def test_fig11(self):
        report = figures.fig11(ring_size=64, include_payload_drop=True)
        check_report(report, "fig11")
        assert {r["config"] for r in report.rows} == {
            "ddio", "idio", "idio-payload-drop",
        }

    def test_fig12(self):
        report = figures.fig12(
            burst_rates=(25.0,), ring_size=64, include_corun=False
        )
        check_report(report, "fig12")
        row = report.rows[0]
        assert row["ddio_p99_us"] > 0 and row["idio_p99_us"] > 0

    def test_fig13(self):
        report = figures.fig13(ring_size=64, duration_us=300.0)
        check_report(report, "fig13")

    def test_fig14(self):
        report = figures.fig14(thresholds_mtps=(50.0,), ring_size=64)
        check_report(report, "fig14")
        assert len(report.rows) == 1


class TestExtensionHarness:
    def test_ext_baselines(self):
        report = extensions.ext_baselines(burst_rates=(50.0,), ring_size=64)
        check_report(report, "ext-baselines")
        assert {r["policy"] for r in report.rows} == {
            "ddio", "iat", "idio", "idio-regulated",
        }

    def test_ext_recycling(self):
        report = extensions.ext_recycling_modes(
            ring_size=64, policy_names=("ddio",)
        )
        check_report(report, "ext-recycling")
        assert {r["mode"] for r in report.rows} == {
            "run_to_completion", "copy", "reallocate",
        }

    def test_ext_burst_threshold(self):
        report = extensions.ext_burst_threshold(
            thresholds_gbps=(10.0,), ring_size=64
        )
        check_report(report, "ext-burstthr")

    def test_ext_ring_sweep(self):
        report = extensions.ext_ring_sweep(ring_sizes=(64,))
        check_report(report, "ext-ring")

    def test_ext_inclusive(self):
        report = extensions.ext_inclusive_counterfactual(ring_size=64)
        check_report(report, "ext-inclusive")
        assert {r["hierarchy"] for r in report.rows} == {
            "inclusive", "non-inclusive",
        }

    def test_ext_saturation(self):
        report = extensions.ext_saturation(
            rates_gbps=(10.0,), ring_size=64, duration_us=300.0
        )
        check_report(report, "ext-saturation")
