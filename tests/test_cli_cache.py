"""Tests for the CLI's result-cache surface.

Covers the ``idio-repro cache`` subcommand (stats / verify / gc), the
``--cache-dir`` / ``--no-cache`` flags threaded through the sweep
commands, the ``[cache: ...]`` traffic trailer, and the ``serve``
argument parsing (the live daemon round trip is covered by
``tests/test_cache_serve.py`` and ``make serve-smoke``).
"""

import pytest

from repro.cache import ResultCache
from repro.cli import build_parser, main

COMPARE_SMALL = [
    "compare", "--policies", "ddio,idio", "--ring", "32", "--rate", "50",
]


class TestCacheParser:
    def test_cache_subcommands_parse(self):
        args = build_parser().parse_args(["cache", "stats"])
        assert (args.command, args.cache_command) == ("cache", "stats")
        args = build_parser().parse_args(
            ["cache", "verify", "--sample", "3", "--checked", "--no-evict"]
        )
        assert args.sample == 3 and args.checked and args.no_evict
        args = build_parser().parse_args(
            ["cache", "gc", "--max-bytes", "1000", "--max-age-days", "7"]
        )
        assert args.max_bytes == 1000 and args.max_age_days == 7.0

    def test_cache_dir_flag_on_nested_subcommands(self, tmp_path):
        args = build_parser().parse_args(
            ["cache", "stats", "--cache-dir", str(tmp_path)]
        )
        assert args.cache_dir == str(tmp_path)

    def test_serve_parses(self, tmp_path):
        args = build_parser().parse_args(
            ["serve", "--socket", str(tmp_path / "s.sock"),
             "--max-requests", "3", "--jobs", "2"]
        )
        assert args.command == "serve"
        assert args.max_requests == 3 and args.jobs == 2

    def test_sweep_commands_take_cache_flags(self):
        for cmd in (["compare"], ["figure", "fig13"], ["faults"], ["rack"]):
            args = build_parser().parse_args(
                cmd + ["--cache-dir", "/tmp/x", "--no-cache"]
            )
            assert args.cache_dir == "/tmp/x" and args.no_cache


class TestCacheFlagsOnSweeps:
    def test_compare_warm_run_hits_cache(self, tmp_path, capsys):
        flags = ["--cache-dir", str(tmp_path)]
        assert main(COMPARE_SMALL + flags) == 0
        cold = capsys.readouterr().out
        assert "[cache:" in cold and "2 stores" in cold
        assert main(COMPARE_SMALL + flags) == 0
        warm = capsys.readouterr().out
        assert "2 hits" in warm and "0 stores" in warm

    def test_no_cache_forces_live_runs(self, tmp_path, capsys):
        flags = ["--cache-dir", str(tmp_path)]
        assert main(COMPARE_SMALL + flags) == 0
        capsys.readouterr()
        assert main(COMPARE_SMALL + flags + ["--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "[cache:" not in out
        # Nothing new was stored by the --no-cache run.
        assert ResultCache(tmp_path).stats()["entries"] == 2

    def test_without_flags_no_cache_trailer(self, capsys):
        assert main(COMPARE_SMALL) == 0
        assert "[cache:" not in capsys.readouterr().out


@pytest.fixture()
def populated(tmp_path, capsys):
    assert main(COMPARE_SMALL + ["--cache-dir", str(tmp_path)]) == 0
    capsys.readouterr()
    return tmp_path


class TestCacheCommand:
    def test_stats(self, populated, capsys):
        assert main(["cache", "stats", "--cache-dir", str(populated)]) == 0
        out = capsys.readouterr().out
        assert "entries:     2" in out
        assert str(populated) in out

    def test_verify_clean(self, populated, capsys):
        assert main(["cache", "verify", "--cache-dir", str(populated)]) == 0
        out = capsys.readouterr().out
        assert "verified 2/2 entries: 2 ok" in out

    def test_verify_detects_corruption(self, populated, capsys):
        victim = next(populated.glob("*/*.pkl"))
        victim.write_bytes(b"garbage")
        assert main(["cache", "verify", "--cache-dir", str(populated)]) == 1
        out = capsys.readouterr().out
        assert "corrupt" in out
        assert not victim.exists()  # evicted
        # A second verify over the survivors is clean again.
        assert main(["cache", "verify", "--cache-dir", str(populated)]) == 0

    def test_gc_budget(self, populated, capsys):
        assert main(
            ["cache", "gc", "--max-bytes", "1", "--cache-dir", str(populated)]
        ) == 0
        out = capsys.readouterr().out
        assert "2 -> 0 entries" in out and "2 over budget" in out
        assert list(populated.glob("*/*.pkl")) == []
