"""Tests for the ``faults`` CLI subcommand and the shared flag vocabulary."""

import json

import pytest

from repro.cli import build_parser, main


class TestSharedFlags:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        import repro

        assert repro.__version__ in out

    def test_workload_alias_for_app(self):
        parser = build_parser()
        assert parser.parse_args(["run", "--workload", "l2fwd"]).app == "l2fwd"
        assert parser.parse_args(["run", "--app", "l2fwd"]).app == "l2fwd"

    def test_seed_flag_shared_across_subcommands(self):
        parser = build_parser()
        for argv in (["run", "--seed", "7"], ["faults", "--seed", "7"],
                     ["compare", "--seed", "7"]):
            assert parser.parse_args(argv).seed == 7

    def test_faults_defaults(self):
        args = build_parser().parse_args(["faults"])
        assert args.policies == "ddio,idio"
        assert args.layers == "nic,pcie,mem,cpu"
        assert args.intensities == "0,0.5,1"
        assert args.retries == 1


class TestFaultsCommand:
    def run_quick(self, capsys, tmp_path, *extra):
        out = tmp_path / "manifest.json"
        rc = main([
            "faults", "--quick", "--jobs", "1",
            "--policies", "ddio",
            "--layers", "nic",
            "--intensities", "0,1",
            "--out", str(out),
            *extra,
        ])
        return rc, capsys.readouterr().out, out

    def test_quick_matrix_runs_and_writes_manifest(self, capsys, tmp_path):
        rc, out, manifest_path = self.run_quick(capsys, tmp_path)
        assert rc == 0
        # One baseline row + one faulted row.
        assert "degradation matrix" in out
        assert "none" in out and "nic" in out
        assert "[2 cells: ok=2]" in out
        manifest = json.loads(manifest_path.read_text())
        assert manifest["total"] == 2
        assert manifest["exit_code"] == 0
        assert manifest["failures"] == []

    def test_checked_quick_matrix_passes_sanitizer(self, capsys, tmp_path):
        rc, out, _ = self.run_quick(capsys, tmp_path, "--checked")
        assert rc == 0

    @pytest.mark.parametrize("argv", [
        ["faults", "--layers", "disk"],
        ["faults", "--intensities", "high"],
        ["faults", "--policies", ""],
    ])
    def test_bad_inputs_exit_2(self, argv, capsys):
        assert main(argv) == 2
        assert capsys.readouterr().err

    def test_faulted_cell_reports_injections(self, capsys, tmp_path):
        rc, out, _ = self.run_quick(capsys, tmp_path)
        assert rc == 0
        faulted_rows = [
            line for line in out.splitlines()
            if " nic " in f" {line} " and "ok" in line
        ]
        assert faulted_rows, out
