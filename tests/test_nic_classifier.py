"""Unit tests for the IDIO classifier (§V-A)."""

import pytest

from repro.net.packet import Packet
from repro.nic.classifier import (
    ClassifierConfig,
    IdioClassifier,
    gbps_to_bytes_per_interval,
)
from repro.sim import Simulator, units


def make_classifier(threshold_gbps=10.0, num_cores=4):
    sim = Simulator()
    clf = IdioClassifier(
        sim,
        ClassifierConfig(rx_burst_threshold_gbps=threshold_gbps, num_cores=num_cores),
    )
    return sim, clf


class TestThreshold:
    def test_10gbps_threshold_is_1250_bytes_per_us(self):
        assert gbps_to_bytes_per_interval(10.0, units.microseconds(1)) == 1250

    def test_threshold_stored(self):
        _, clf = make_classifier(threshold_gbps=10.0)
        assert clf.threshold_bytes_per_interval == 1250


class TestBurstDetection:
    def test_edge_fires_on_crossing(self):
        sim, clf = make_classifier()
        assert not clf.observe_packet(Packet(size_bytes=1000), 0)
        assert clf.observe_packet(Packet(size_bytes=1000), 0)  # crosses 1250
        assert clf.bursts_detected == 1

    def test_no_repeat_edge_within_window(self):
        sim, clf = make_classifier()
        clf.observe_packet(Packet(size_bytes=2000), 0)  # edge
        assert not clf.observe_packet(Packet(size_bytes=2000), 0)
        assert clf.bursts_detected == 1

    def test_sustained_burst_produces_single_edge(self):
        """Crossing every window (a long burst) must not re-notify."""
        sim, clf = make_classifier()
        interval = units.microseconds(1)
        for window in range(5):
            for _ in range(3):
                clf.observe_packet(Packet(size_bytes=1514), 0)
            sim.run(until=(window + 1) * interval)
        assert clf.bursts_detected == 1

    def test_quiet_window_rearms_detection(self):
        sim, clf = make_classifier()
        interval = units.microseconds(1)
        for _ in range(3):
            clf.observe_packet(Packet(size_bytes=1514), 0)
        # Two quiet windows.
        sim.run(until=3 * interval)
        for _ in range(3):
            clf.observe_packet(Packet(size_bytes=1514), 0)
        assert clf.bursts_detected == 2

    def test_counters_are_per_core(self):
        sim, clf = make_classifier()
        clf.observe_packet(Packet(size_bytes=1300), 0)
        assert clf.bursts_detected == 1
        # Core 1's counter is independent.
        assert not clf.observe_packet(Packet(size_bytes=1000), 1)

    def test_counter_resets_each_interval(self):
        sim, clf = make_classifier()
        clf.observe_packet(Packet(size_bytes=1000), 0)
        sim.run(until=units.microseconds(1))
        # Counter reset: another 1000 bytes does not cross.
        assert not clf.observe_packet(Packet(size_bytes=1000), 0)


class TestTagging:
    def test_first_line_is_header(self):
        _, clf = make_classifier()
        p = Packet(size_bytes=1514)
        tag0 = clf.tag_for_line(p, 2, 0, False)
        tag1 = clf.tag_for_line(p, 2, 1, False)
        assert tag0.is_header and not tag1.is_header
        assert tag0.dest_core == 2

    def test_class1_packet_tagged_class1(self):
        _, clf = make_classifier()
        p = Packet(size_bytes=1514, app_class=1)
        tag = clf.tag_for_line(p, 2, 5, False)
        assert tag.app_class == 1

    def test_burst_flag_propagated(self):
        _, clf = make_classifier()
        p = Packet()
        assert clf.tag_for_line(p, 0, 0, True).is_burst
        assert not clf.tag_for_line(p, 0, 0, False).is_burst

    def test_stop_halts_reset_task(self):
        sim, clf = make_classifier()
        clf.stop()
        sim.run(until=units.microseconds(10))  # must not loop forever
