"""The observability plane: event bus, typed events, trace recorder."""

import json

import pytest

from repro.core.policies import idio
from repro.harness.experiment import Experiment, run_experiment
from repro.harness.server import ServerConfig
from repro.mem import DMA_WRITE, INVALIDATE, MemoryTransaction
from repro.mem.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.mem.transaction import PREFETCH_FILL, Hop
from repro.obs import EventBus, TraceRecorder
from repro.obs.events import LlcWritebackEvent, MlcWritebackEvent, PmdBatchEvent
from repro.obs.trace import categorize, merge_latency_breakdowns
from tests.memtxn import cpu_access, pcie_write


class TestEventBus:
    def test_publish_reaches_subscribers_in_order(self):
        bus = EventBus()
        seen = []
        bus.subscribe(MlcWritebackEvent, lambda e: seen.append(("a", e.core)))
        bus.subscribe(MlcWritebackEvent, lambda e: seen.append(("b", e.core)))
        bus.publish(MlcWritebackEvent(3, 100))
        assert seen == [("a", 3), ("b", 3)]

    def test_topics_are_isolated_by_type(self):
        bus = EventBus()
        seen = []
        bus.subscribe(MlcWritebackEvent, seen.append)
        bus.publish(LlcWritebackEvent(0x40, 1))
        assert seen == []

    def test_live_list_is_stable(self):
        bus = EventBus()
        live = bus.live(PmdBatchEvent)
        assert live == []
        handler = lambda e: None  # noqa: E731
        bus.subscribe(PmdBatchEvent, handler)
        assert live == [handler]  # same list object, mutated in place
        bus.unsubscribe(PmdBatchEvent, handler)
        assert live == []

    def test_unsubscribe_unknown_is_noop(self):
        bus = EventBus()
        bus.unsubscribe(MlcWritebackEvent, lambda e: None)

    def test_has_subscribers_and_topics(self):
        bus = EventBus()
        assert not bus.has_subscribers(MlcWritebackEvent)
        bus.subscribe(MlcWritebackEvent, lambda e: None)
        assert bus.has_subscribers(MlcWritebackEvent)
        assert bus.topics() == [MlcWritebackEvent]


class TestHierarchyPublishing:
    def test_stats_subscriber_counts_writebacks(self):
        h = MemoryHierarchy(HierarchyConfig(num_cores=1, l1_enabled=False))
        h.bus.publish(MlcWritebackEvent(0, 5))
        h.bus.publish(LlcWritebackEvent(0x40, 6))
        assert h.stats.counters.get("mlc_writebacks") == 1
        assert h.stats.counters.get("mlc_writebacks_c0") == 1
        assert h.stats.counters.get("llc_writebacks") == 1

    def test_transactions_published_when_subscribed(self):
        h = MemoryHierarchy(HierarchyConfig(num_cores=1, l1_enabled=False))
        seen = []
        h.bus.subscribe(MemoryTransaction, seen.append)
        cpu_access(h, 0, 0x1000, False, 0)
        assert len(seen) == 1 and seen[0].level == "dram"


class TestCategorize:
    @pytest.mark.parametrize(
        "kind,hop,expected",
        [
            (DMA_WRITE, Hop("llc", "fill", 0), "ddio-fill"),
            (DMA_WRITE, Hop("llc", "update", 0), "ddio-update"),
            (DMA_WRITE, Hop("dram", "write", 0), "direct-dram-write"),
            (PREFETCH_FILL, Hop("mlc", "fill", 0), "mlc-steer-fill"),
            (INVALIDATE, Hop("mlc", "drop", 0), "invalidate-drop"),
            (INVALIDATE, Hop("llc", "drop", 0), "invalidate-drop"),
            (DMA_WRITE, Hop("mlc", "inval", 0), DMA_WRITE),
        ],
    )
    def test_mechanism_categories(self, kind, hop, expected):
        assert categorize(MemoryTransaction(kind, 0x40, 0), hop) == expected


class TestTraceRecorder:
    def make(self, **kwargs):
        h = MemoryHierarchy(HierarchyConfig(num_cores=1, l1_enabled=False))
        rec = TraceRecorder(**kwargs).attach(h)
        return h, rec

    def test_attach_enables_hop_recording(self):
        h, rec = self.make()
        assert h.record_hops is True
        pcie_write(h, 0x1000, 0)
        assert rec.transactions == 1
        assert rec.category_counts.get("ddio-fill") == 1

    def test_detach_restores_hierarchy(self):
        h, rec = self.make()
        rec.detach()
        assert h.record_hops is False
        pcie_write(h, 0x1000, 0)
        assert rec.transactions == 0
        rec.detach()  # second detach is a no-op

    def test_double_attach_rejected(self):
        h, rec = self.make()
        with pytest.raises(RuntimeError):
            rec.attach(h)

    def test_max_events_bounds_memory(self):
        h, rec = self.make(max_events=2)
        for i in range(5):
            pcie_write(h, 0x1000 + i * 64, i)
        assert len(rec.trace_events) == 2
        assert rec.dropped_events == 3
        assert rec.transactions == 5  # accounting keeps going

    def test_chrome_trace_shape(self, tmp_path):
        h, rec = self.make()
        pcie_write(h, 0x1000, 0)
        cpu_access(h, 0, 0x1000, False, 10)
        path = tmp_path / "trace.json"
        count = rec.export(str(path))
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert len(events) == count
        phases = {e["ph"] for e in events}
        assert "M" in phases and "X" in phases  # metadata + complete events
        for e in events:
            assert isinstance(e["name"], str) and "pid" in e
            if e["ph"] == "X":
                assert e["dur"] >= 0 and "cat" in e
        lanes = {
            e["args"]["name"] for e in events if e["name"] == "thread_name"
        }
        assert {"mlc", "llc", "dram"} <= lanes
        assert doc["otherData"]["transactions"] == 2

    def test_latency_breakdown(self):
        h, rec = self.make()
        assert rec.latency_breakdown_ns() == {}
        cpu_access(h, 0, 0x1000, False, 0)
        breakdown = rec.latency_breakdown_ns()
        assert breakdown["mean_dram_ns"] > 0
        assert merge_latency_breakdowns({"x": 1.0}, rec)["x"] == 1.0
        assert "mean_dram_ns" in merge_latency_breakdowns({}, rec)
        assert merge_latency_breakdowns({"x": 1.0}, None) == {"x": 1.0}

    def test_instant_events(self):
        h, rec = self.make()
        h.bus.publish(MlcWritebackEvent(0, 5))
        h.bus.publish(PmdBatchEvent(0, 32, 6))
        assert rec.category_counts.get("mlc-writeback") == 1
        assert rec.category_counts.get("pmd-batch") == 1
        assert "transactions traced" in rec.summary_line()


class TestServerTracing:
    def test_traced_run_produces_mechanism_categories(self):
        experiment = Experiment(
            name="trace-test",
            server=ServerConfig(
                policy=idio(),
                apps=["touchdrop", "l2fwd-payload-drop"],
                num_nf_cores=2,
                ring_size=64,
                trace_enabled=True,
            ),
            traffic="bursty",
            burst_rate_gbps=100.0,
        )
        result = run_experiment(experiment)
        rec = result.server.trace_recorder
        assert rec is not None
        for category in (
            "ddio-fill",
            "mlc-steer-fill",
            "direct-dram-write",
            "invalidate-drop",
        ):
            assert rec.category_counts.get(category, 0) > 0, category
        # The component breakdown folds into the result's latency split.
        breakdown = result.latency_breakdown_ns()
        assert "mean_queueing_ns" in breakdown
        assert breakdown.get("mean_dram_ns", 0.0) > 0

    def test_tracing_off_by_default(self):
        server_cfg = ServerConfig(ring_size=32)
        from repro.harness.server import SimulatedServer

        server = SimulatedServer(server_cfg)
        assert server.trace_recorder is None
        assert server.hierarchy.record_hops is False
