"""Seeded-bug tests: every sanitizer invariant fires on a planted violation.

Each test corrupts one specific piece of model state (or feeds one
malformed transaction) and asserts the :class:`InvariantSanitizer` raises
:class:`InvariantViolation` naming exactly that invariant — the checker
must point at the broken property, not a downstream symptom.  The final
tests prove the other direction: real simulated traffic stays clean.
"""

from types import SimpleNamespace

import pytest

from repro.analysis import InvariantSanitizer, InvariantViolation
from repro.core.fsm import StatusFSM
from repro.cpu.mempool import BufferPool
from repro.mem.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.mem.line import CacheLine
from repro.mem.transaction import (
    CPU_LOAD,
    DMA_WRITE,
    Hop,
    MemoryTransaction,
)


def make_hierarchy(**kwargs):
    kwargs.setdefault("num_cores", 2)
    kwargs.setdefault("l1_enabled", False)
    return MemoryHierarchy(HierarchyConfig(**kwargs))


def make_sanitizer(h=None, **kwargs):
    h = h or make_hierarchy(**kwargs)
    return h, InvariantSanitizer(h).attach()


def warm(h, core=0, addrs=range(0, 0x4000, 64)):
    for addr in addrs:
        h.access(MemoryTransaction(CPU_LOAD, addr, 0, core=core))


def expect(invariant):
    return pytest.raises(InvariantViolation, match=rf"\[{invariant}\]")


# ---------------------------------------------------------------------------
# structural barriers on corrupted state
# ---------------------------------------------------------------------------


class TestHierarchyState:
    def test_mlc_llc_duplicate_line(self):
        h, san = make_sanitizer()
        warm(h)
        line = next(h.mlc[0].data.lines())
        # Plant the non-inclusive violation: the same address resident in
        # both a private MLC and the LLC data array.
        h.llc.data.insert(CacheLine(line.addr))
        with expect("mlc-llc-exclusivity") as excinfo:
            san.check_all()
        assert excinfo.value.invariant == "mlc-llc-exclusivity"
        assert f"{line.addr:#x}" in str(excinfo.value)

    def test_l1_without_mlc_copy(self):
        h, san = make_sanitizer(l1_enabled=True)
        warm(h)
        l1_line = next(h.l1[0].data.lines())
        # Drop the MLC copy behind the hierarchy's back; L1 ⊆ MLC breaks.
        h.mlc[0].data.remove(l1_line.addr)
        h.llc.directory.remove(l1_line.addr, 0)
        with expect("l1-inclusion"):
            san.check_all()

    def test_untracked_mlc_line(self):
        h, san = make_sanitizer()
        warm(h)
        line = next(h.mlc[0].data.lines())
        # A coherence bug: the snoop filter forgets an MLC-resident line.
        h.llc.directory.remove(line.addr, 0)
        with expect("directory-coverage"):
            san.check_all()


class TestCacheStructure:
    def test_where_index_desync(self):
        h, san = make_sanitizer()
        warm(h)
        cache = h.mlc[0].data
        addr = next(cache.lines()).addr
        del cache._where[addr]
        with expect("cache-structure"):
            san.check_all()

    def test_lru_stamp_cleared_on_occupied_way(self):
        h, san = make_sanitizer()
        warm(h)
        cache = h.mlc[0].data
        addr = next(cache.lines()).addr
        set_idx, way = cache._where[addr]
        cache.policy._last_use[set_idx][way] = 0
        with expect("lru-consistency"):
            san.check_all()


class TestFsmAndPools:
    def test_illegal_fsm_state(self):
        h, san = make_sanitizer()
        fsm = StatusFSM()
        fsm.state = 0b111  # beyond the 2-bit saturating range
        san.register_controller(SimpleNamespace(fsm=[fsm]))
        with expect("fsm-state"):
            san.check_all()

    def test_double_free(self):
        h, san = make_sanitizer()
        pool = BufferPool(0x10000, 2048, 4)
        san.register_pool(pool)
        addr = pool.alloc()
        pool.free(addr)
        pool.free(addr)
        with expect("mempool-lifecycle") as excinfo:
            san.check_all()
        assert "double free" in str(excinfo.value)

    def test_accounting_leak(self):
        h, san = make_sanitizer()
        pool = BufferPool(0x10000, 2048, 4)
        san.register_pool(pool)
        # A buffer vanishes without going through alloc(): leak.
        pool._free.pop()
        with expect("mempool-lifecycle") as excinfo:
            san.check_all()
        assert "leak" in str(excinfo.value)


# ---------------------------------------------------------------------------
# per-transaction checks on malformed transactions
# ---------------------------------------------------------------------------


class TestTransactionChecks:
    def test_non_monotone_timestamps(self):
        h, san = make_sanitizer()
        san.on_transaction(MemoryTransaction(CPU_LOAD, 0x100, 1000, core=0))
        with expect("monotone-time"):
            san.on_transaction(MemoryTransaction(CPU_LOAD, 0x140, 500, core=0))

    def test_reversed_hop_depth(self):
        h, san = make_sanitizer()
        txn = MemoryTransaction(CPU_LOAD, 0x100, 0, core=0)
        txn.level = "mlc"
        txn.latency = 15
        # dram (depth 4) before mlc (depth 1) on the critical path.
        txn.hops = [Hop("dram", "read", 10), Hop("mlc", "hit", 5)]
        with expect("hop-chain") as excinfo:
            san.on_transaction(txn)
        assert "regressed" in str(excinfo.value)

    def test_hop_sum_mismatch(self):
        h, san = make_sanitizer()
        txn = MemoryTransaction(CPU_LOAD, 0x100, 0, core=0)
        txn.level = "mlc"
        txn.latency = 99
        txn.hops = [Hop("mlc", "hit", 5)]
        with expect("hop-chain") as excinfo:
            san.on_transaction(txn)
        assert "sum" in str(excinfo.value)

    def test_illegal_hop_pair(self):
        h, san = make_sanitizer()
        txn = MemoryTransaction(CPU_LOAD, 0x100, 0, core=0)
        txn.level = "mlc"
        txn.latency = 5
        txn.hops = [Hop("mlc", "teleport", 5)]
        with expect("hop-chain"):
            san.on_transaction(txn)

    def test_unknown_level(self):
        h, san = make_sanitizer()
        txn = MemoryTransaction(CPU_LOAD, 0x100, 0, core=0)
        txn.level = "l9"
        with expect("hop-chain"):
            san.on_transaction(txn)

    def test_dma_write_into_free_buffer(self):
        h, san = make_sanitizer()
        pool = BufferPool(0x10000, 2048, 4)
        san.register_pool(pool)
        keep = pool.alloc()  # 0x11800 (LIFO pops the top)
        # DMA into a buffer still on the free list: use-after-free.
        txn = MemoryTransaction(DMA_WRITE, pool.base + 64, 0)
        with expect("mempool-lifecycle") as excinfo:
            san.on_transaction(txn)
        assert "free list" in str(excinfo.value)
        # DMA into the allocated buffer is fine.
        san.on_transaction(MemoryTransaction(DMA_WRITE, keep, 10))


# ---------------------------------------------------------------------------
# the other direction: real traffic stays clean
# ---------------------------------------------------------------------------


class TestCleanRuns:
    def test_real_traffic_is_clean(self):
        h, san = make_sanitizer()
        warm(h, core=0)
        warm(h, core=1, addrs=range(0x2000, 0x6000, 64))
        for addr in range(0, 0x1000, 64):
            h.access(MemoryTransaction(DMA_WRITE, addr, 100))
        san.check_all()
        assert san.violations_raised == 0
        # attach() put the sanitizer on the bus, so the accesses above were
        # checked per-transaction too.
        assert san.transactions_checked > 0

    def test_barrier_fires_from_bus_traffic(self):
        h = make_hierarchy()
        san = InvariantSanitizer(h, barrier_interval=16).attach()
        warm(h)
        assert san.barriers_run > 0
        assert san.violations_raised == 0

    def test_detach_restores_hop_recording(self):
        h = make_hierarchy()
        assert h.record_hops is False
        san = InvariantSanitizer(h, barrier_interval=8).attach()
        assert h.record_hops is True
        san.detach()
        assert h.record_hops is False
        before = san.transactions_checked
        warm(h)
        assert san.transactions_checked == before

    def test_checked_mode_server_wiring(self):
        from repro.core import policies
        from repro.harness.server import ServerConfig, SimulatedServer
        from repro.sim import units

        server = SimulatedServer(
            ServerConfig(
                policy=policies.idio(),
                ring_size=256,
                recycle_mode="reallocate",
                checked_mode=True,
                checked_barrier_interval=256,
            )
        )
        assert server.sanitizer is not None
        assert server.sanitizer._controller is server.controller
        assert server.sanitizer._pools  # reallocate mode has buffer pools
        server.start()
        server.inject_bursty(burst_rate_gbps=25.0, start=units.microseconds(20))
        server.run_until_drained(deadline=units.milliseconds(12))
        server.sanitizer.check_all()
        assert server.sanitizer.violations_raised == 0
        assert server.sanitizer.barriers_run > 0

    def test_unchecked_server_has_no_sanitizer(self):
        from repro.harness.server import ServerConfig, SimulatedServer

        server = SimulatedServer(ServerConfig())
        assert server.sanitizer is None
        assert server.hierarchy.record_hops is False
