"""Unit tests for the Table II network functions and the cost model."""

import pytest

from repro.cpu.apps import (
    CostModel,
    L2Fwd,
    L2FwdPayloadDrop,
    LLCAntagonist,
    TouchDrop,
)
from repro.cpu.core import Core
from repro.mem.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.net.packet import Packet
from repro.sim import Simulator, units
from tests.memtxn import pcie_write

BUF = 0x100000


def make_core():
    sim = Simulator()
    h = MemoryHierarchy(HierarchyConfig(num_cores=1, l1_enabled=False))
    return sim, h, Core(sim, 0, h)


def dma_packet(h, size=1514, app_class=0):
    p = Packet(size_bytes=size, app_class=app_class)
    p.buffer_addr = BUF
    for i in range(p.num_lines):
        pcie_write(h, BUF + i * 64, 0)
    return p


class TestTouchDrop:
    def test_touches_every_line(self):
        sim, h, core = make_core()
        app = TouchDrop()
        p = dma_packet(h)
        app.process(core, p)
        assert core.stats.mem_accesses == 24
        for i in range(24):
            assert BUF + i * 64 in h.mlc[0]

    def test_counts_packets_and_bytes(self):
        sim, h, core = make_core()
        app = TouchDrop()
        app.process(core, dma_packet(h))
        assert app.packets_processed == 1
        assert app.bytes_processed == 1514

    def test_latency_near_one_microsecond_when_llc_resident(self):
        """Calibration guard: per-packet cost ~= the paper's ~12 Gbps/core
        saturation point for 1514 B TouchDrop."""
        sim, h, core = make_core()
        app = TouchDrop()
        latency = app.process(core, dma_packet(h))
        # 1538 B wire frame at 12 Gbps is ~1025 ns; stay within 25%.
        assert units.to_nanoseconds(latency) == pytest.approx(1025, rel=0.25)

    def test_faster_when_data_in_mlc(self):
        sim, h, core = make_core()
        app = TouchDrop()
        p = dma_packet(h)
        cold = app.process(core, p)
        warm = app.process(core, p)  # now MLC-resident
        assert warm < cold

    def test_unprocessed_packet_rejected(self):
        sim, h, core = make_core()
        with pytest.raises(AssertionError):
            TouchDrop().process(core, Packet())

    def test_app_class_zero(self):
        assert TouchDrop().app_class == 0
        assert not TouchDrop().transmits


class TestL2Fwd:
    def test_reads_only_header(self):
        sim, h, core = make_core()
        app = L2Fwd()
        app.process(core, dma_packet(h))
        # Header read + MAC rewrite: payload lines never touched.
        assert BUF in h.mlc[0]
        assert BUF + 5 * 64 not in h.mlc[0]

    def test_mac_rewrite_dirties_header(self):
        sim, h, core = make_core()
        app = L2Fwd()
        app.process(core, dma_packet(h))
        assert h.mlc[0].peek(BUF).dirty

    def test_transmits_flag(self):
        assert L2Fwd().transmits

    def test_cheaper_than_touchdrop(self):
        sim, h, core = make_core()
        p = dma_packet(h)
        l2 = L2Fwd().process(core, p)
        sim2, h2, core2 = make_core()
        td = TouchDrop().process(core2, dma_packet(h2))
        assert l2 < td


class TestL2FwdPayloadDrop:
    def test_is_class_one(self):
        assert L2FwdPayloadDrop().app_class == 1
        assert not L2FwdPayloadDrop().transmits

    def test_payload_untouched(self):
        sim, h, core = make_core()
        app = L2FwdPayloadDrop()
        app.process(core, dma_packet(h, app_class=1))
        assert BUF + 64 not in h.mlc[0]


class TestLLCAntagonist:
    def test_geometry(self):
        app = LLCAntagonist(buffer_base=0, buffer_bytes=2 * 1024 * 1024)
        assert app.num_lines() == 32768

    def test_tiny_buffer_rejected(self):
        with pytest.raises(ValueError):
            LLCAntagonist(buffer_base=0, buffer_bytes=32)
