"""Tests for the memory hierarchy: the Fig. 1 / Fig. 2 data paths.

These tests pin down the exact state transitions the paper describes for
PCIe writes/reads and demand misses in a non-inclusive hierarchy, plus the
invalidate-without-writeback operation.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.cache import CacheConfig
from repro.mem.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.mem.line import LINE_SIZE
from repro.obs.events import MlcWritebackEvent
from tests.memtxn import cpu_access, invalidate, pcie_read, pcie_write, prefetch_fill


def make_hierarchy(num_cores=2, l1=False, llc_bytes=None, ddio_ways=2, inclusive=False,
                   directory_capacity=None):
    cfg = HierarchyConfig(
        num_cores=num_cores,
        l1_enabled=l1,
        ddio_ways=ddio_ways,
        llc_inclusive=inclusive,
        directory_capacity=directory_capacity,
    )
    if llc_bytes is not None:
        cfg.llc = CacheConfig("llc", llc_bytes, 4, latency=1000)
    return MemoryHierarchy(cfg)


ADDR = 0x100000  # line-aligned test address


class TestPcieWriteIngress:
    """Fig. 1 ingress: P1-P5 cases."""

    def test_uncached_write_allocates_in_ddio_ways(self):
        h = make_hierarchy()
        pcie_write(h, ADDR, 0)
        line = h.llc.peek(ADDR)
        assert line is not None and line.dirty and line.origin == "io"
        _, way = h.llc.data._where[ADDR]
        assert way < h.llc.ddio_ways  # P5-1: write-allocate in DDIO ways

    def test_llc_resident_line_updated_in_place(self):
        h = make_hierarchy()
        # Put the line in a non-DDIO way via the CPU victim path.
        h.llc.fill_cpu(__import__("repro.mem.line", fromlist=["CacheLine"]).CacheLine(ADDR), 0)
        _, way_before = h.llc.data._where[ADDR]
        pcie_write(h, ADDR, 0)
        _, way_after = h.llc.data._where[ADDR]
        assert way_before == way_after  # P3-1: in-place update
        assert h.llc.peek(ADDR).dirty

    def test_mlc_resident_line_invalidated(self):
        h = make_hierarchy()
        # Demand-read pulls the line into core 0's MLC.
        pcie_write(h, ADDR, 0)
        cpu_access(h, 0, ADDR, False, 0)
        assert ADDR in h.mlc[0]
        pcie_write(h, ADDR, 10)
        assert ADDR not in h.mlc[0]  # P1-1: MLC copy invalidated
        assert h.stats.counters.get("mlc_invalidations") == 1
        assert ADDR in h.llc  # reallocated in DDIO ways

    def test_direct_dram_placement(self):
        h = make_hierarchy()
        pcie_write(h, ADDR, 0, placement="dram")
        assert ADDR not in h.llc
        assert h.dram.writes == 1
        assert h.stats.counters.get("direct_dram_writes") == 1

    def test_direct_dram_drops_stale_llc_copy(self):
        h = make_hierarchy()
        pcie_write(h, ADDR, 0)  # in LLC
        pcie_write(h, ADDR, 10, placement="dram")
        assert ADDR not in h.llc

    def test_direct_dram_invalidates_mlc_copy(self):
        h = make_hierarchy()
        pcie_write(h, ADDR, 0)
        cpu_access(h, 0, ADDR, False, 0)
        pcie_write(h, ADDR, 10, placement="dram")
        assert ADDR not in h.mlc[0]

    def test_unknown_placement_rejected(self):
        h = make_hierarchy()
        with pytest.raises(ValueError):
            pcie_write(h, ADDR, 0, placement="l1")

    def test_ddio_overflow_evicts_dirty_io_to_dram(self):
        # Small LLC: 4 ways x N sets, 2 DDIO ways. Overfill one set.
        h = make_hierarchy(llc_bytes=4 * 4 * LINE_SIZE)
        sets = h.llc.data.num_sets
        target_set = 0
        addrs = [(t * sets + target_set) * LINE_SIZE for t in range(3)]
        for a in addrs:
            pcie_write(h, a, 0)
        # Two DDIO ways -> third write evicted the first (dirty -> DRAM).
        assert h.dram.writes == 1
        assert h.stats.counters.get("llc_writebacks") == 1


class TestPcieReadEgress:
    """Fig. 1 egress + Fig. 3 (right): TX pulls MLC copies back to LLC."""

    def test_read_from_llc(self):
        h = make_hierarchy()
        pcie_write(h, ADDR, 0)
        pcie_read(h, ADDR, 10)
        assert h.dram.reads == 0
        assert h.stats.counters.get("pcie_reads") == 1

    def test_read_uncached_goes_to_dram(self):
        h = make_hierarchy()
        pcie_read(h, ADDR, 0)
        assert h.dram.reads == 1

    def test_read_pulls_mlc_copy_back_to_llc(self):
        h = make_hierarchy()
        pcie_write(h, ADDR, 0)
        cpu_access(h, 0, ADDR, False, 0)   # line now (dirty) in MLC
        assert ADDR in h.mlc[0] and ADDR not in h.llc
        pcie_read(h, ADDR, 10)
        assert ADDR not in h.mlc[0]
        assert ADDR in h.llc  # invalidated from MLC, back in LLC
        assert h.stats.counters.get("mlc_writebacks") == 1


class TestDemandPath:
    """Fig. 2: demand misses move data up; tags move to the directory."""

    def test_llc_hit_moves_line_to_mlc_noninclusive(self):
        h = make_hierarchy()
        pcie_write(h, ADDR, 0)
        result = cpu_access(h, 0, ADDR, False, 0)
        assert result.level == "llc"
        assert ADDR in h.mlc[0]
        assert ADDR not in h.llc           # data left the LLC
        assert ADDR in h.llc.directory     # tag moved to the directory
        assert h.mlc[0].peek(ADDR).dirty   # dirtiness carried upward

    def test_miss_everywhere_reads_dram(self):
        h = make_hierarchy()
        result = cpu_access(h, 0, ADDR, False, 0)
        assert result.level == "dram"
        assert h.dram.reads == 1
        assert ADDR in h.mlc[0]

    def test_mlc_hit(self):
        h = make_hierarchy()
        cpu_access(h, 0, ADDR, False, 0)
        result = cpu_access(h, 0, ADDR, False, 1)
        assert result.level == "mlc"

    def test_write_marks_dirty(self):
        h = make_hierarchy()
        cpu_access(h, 0, ADDR, True, 0)
        assert h.mlc[0].peek(ADDR).dirty

    def test_latency_ordering(self):
        h = make_hierarchy()
        dram_lat = cpu_access(h, 0, ADDR, False, 0).latency
        mlc_lat = cpu_access(h, 0, ADDR, False, 1).latency
        assert dram_lat > mlc_lat

    def test_mlc_victim_fills_llc_any_dirtiness(self):
        """Non-inclusive victim cache: clean AND dirty MLC victims fill LLC."""
        h = make_hierarchy(num_cores=1)
        mlc_lines = h.mlc[0].capacity_lines
        for i in range(mlc_lines + 10):
            cpu_access(h, 0, i * LINE_SIZE, False, i)
        assert h.stats.counters.get("mlc_writebacks") == 10
        # The victims were clean (read-only): counted as clean writebacks.
        assert h.stats.counters.get("mlc_writebacks_clean") == 10

    def test_mlc_writeback_listener_called(self):
        h = make_hierarchy(num_cores=1)
        calls = []
        h.bus.subscribe(MlcWritebackEvent, lambda event: calls.append(event.core))
        mlc_lines = h.mlc[0].capacity_lines
        for i in range(mlc_lines + 1):
            cpu_access(h, 0, i * LINE_SIZE, False, i)
        assert calls == [0]

    def test_dma_bloating_mlc_victim_lands_in_non_ddio_way(self):
        """Obs. 3: after an MLC writeback, I/O data occupies non-DDIO ways."""
        h = make_hierarchy(num_cores=1, llc_bytes=4 * 64 * LINE_SIZE)
        pcie_write(h, ADDR, 0)
        cpu_access(h, 0, ADDR, False, 0)
        # Force the line out of the MLC by filling it with other lines
        # mapping to the same MLC set.
        mlc = h.mlc[0]
        set_idx = mlc.data.set_index(ADDR)
        base_tag = (ADDR // LINE_SIZE) // mlc.data.num_sets
        for t in range(1, mlc.data.assoc + 1):
            conflict = ((base_tag + t) * mlc.data.num_sets + set_idx) * LINE_SIZE
            cpu_access(h, 0, conflict, False, t)
        assert ADDR not in mlc
        assert ADDR in h.llc
        _, way = h.llc.data._where[ADDR]
        assert way >= h.llc.ddio_ways  # bloated into a non-DDIO way


class TestInvalidate:
    def test_invalidate_drops_without_writeback(self):
        h = make_hierarchy()
        pcie_write(h, ADDR, 0)
        cpu_access(h, 0, ADDR, True, 0)  # dirty in MLC
        dram_writes_before = h.dram.writes
        invalidate(h, 0, ADDR, 10)
        assert ADDR not in h.mlc[0]
        assert ADDR not in h.llc
        assert ADDR not in h.llc.directory
        assert h.dram.writes == dram_writes_before  # NO writeback
        assert h.stats.counters.get("self_invalidations") == 1

    def test_invalidate_private_scope_keeps_llc_copy(self):
        h = make_hierarchy()
        pcie_write(h, ADDR, 0)
        invalidate(h, 0, ADDR, 10, scope="private")
        assert ADDR in h.llc  # only private copies are dropped

    def test_invalidate_unknown_scope(self):
        h = make_hierarchy()
        with pytest.raises(ValueError):
            invalidate(h, 0, ADDR, 0, scope="everything")

    def test_invalidate_missing_line_is_noop(self):
        h = make_hierarchy()
        invalidate(h, 0, ADDR, 0)
        assert h.stats.counters.get("self_invalidations") == 0


class TestPrefetchFill:
    def test_prefetch_moves_llc_line_to_mlc(self):
        h = make_hierarchy()
        pcie_write(h, ADDR, 0)
        assert prefetch_fill(h, 0, ADDR, 10)
        assert ADDR in h.mlc[0]
        assert ADDR not in h.llc
        assert h.stats.counters.get("mlc_prefetch_fills") == 1

    def test_prefetch_noop_when_already_in_mlc(self):
        h = make_hierarchy()
        cpu_access(h, 0, ADDR, False, 0)
        assert not prefetch_fill(h, 0, ADDR, 10)

    def test_prefetch_miss_reads_dram(self):
        h = make_hierarchy()
        assert prefetch_fill(h, 0, ADDR, 0)
        assert h.dram.reads == 1


class TestL1:
    def test_l1_hit_after_first_access(self):
        h = make_hierarchy(l1=True)
        cpu_access(h, 0, ADDR, False, 0)
        result = cpu_access(h, 0, ADDR, False, 1)
        assert result.level == "l1"

    def test_pcie_write_invalidates_l1_copy(self):
        h = make_hierarchy(l1=True)
        pcie_write(h, ADDR, 0)
        cpu_access(h, 0, ADDR, False, 0)
        assert ADDR in h.l1[0]
        pcie_write(h, ADDR, 10)
        assert ADDR not in h.l1[0]

    def test_l1_write_propagates_dirty_to_mlc(self):
        h = make_hierarchy(l1=True)
        cpu_access(h, 0, ADDR, False, 0)
        cpu_access(h, 0, ADDR, True, 1)  # L1 hit write
        assert h.mlc[0].peek(ADDR).dirty


class TestInclusiveCounterfactual:
    def test_llc_keeps_copy_on_demand_hit(self):
        h = make_hierarchy(inclusive=True)
        pcie_write(h, ADDR, 0)
        cpu_access(h, 0, ADDR, False, 0)
        assert ADDR in h.mlc[0]
        assert ADDR in h.llc  # inclusive: copy stays

    def test_llc_eviction_back_invalidates_mlc(self):
        h = make_hierarchy(num_cores=1, llc_bytes=4 * 4 * LINE_SIZE, inclusive=True)
        sets = h.llc.data.num_sets
        target = 0
        addrs = [(t * sets + target) * LINE_SIZE for t in range(6)]
        for i, a in enumerate(addrs):
            cpu_access(h, 0, a, False, i)
        # The set only holds 4 lines; earlier ones were evicted and must
        # have been back-invalidated from the MLC.
        resident_in_mlc = [a for a in addrs if a in h.mlc[0]]
        resident_in_llc = [a for a in addrs if a in h.llc]
        assert set(resident_in_mlc) <= set(resident_in_llc)

    def test_clean_mlc_victim_needs_no_llc_fill(self):
        h = make_hierarchy(num_cores=1, inclusive=True)
        mlc_lines = h.mlc[0].capacity_lines
        for i in range(mlc_lines + 5):
            cpu_access(h, 0, i * LINE_SIZE, False, i)
        assert h.stats.counters.get("mlc_writebacks") == 0  # clean drops


class TestDirectoryCapacity:
    def test_directory_eviction_back_invalidates(self):
        h = make_hierarchy(num_cores=1, directory_capacity=4)
        addrs = [i * LINE_SIZE for i in range(6)]
        for i, a in enumerate(addrs):
            cpu_access(h, 0, a, False, i)
        assert len(h.llc.directory) <= 4
        assert h.stats.counters.get("directory_back_invalidations") >= 2


class TestConservation:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(
        st.sampled_from(["pcie_write", "cpu_read", "cpu_write", "pcie_read", "invalidate", "prefetch"]),
        st.integers(min_value=0, max_value=63),
    ), min_size=1, max_size=200))
    def test_single_copy_location_invariant(self, ops):
        """A line is never in both the LLC data array and an MLC
        (non-inclusive), and directory state matches MLC residency."""
        h = make_hierarchy(num_cores=2, llc_bytes=4 * 8 * LINE_SIZE)
        for op, slot in ops:
            addr = slot * LINE_SIZE
            if op == "pcie_write":
                pcie_write(h, addr, 0)
            elif op == "cpu_read":
                cpu_access(h, slot % 2, addr, False, 0)
            elif op == "cpu_write":
                cpu_access(h, slot % 2, addr, True, 0)
            elif op == "pcie_read":
                pcie_read(h, addr, 0)
            elif op == "invalidate":
                invalidate(h, slot % 2, addr, 0)
            else:
                prefetch_fill(h, slot % 2, addr, 0)
        for slot in range(64):
            addr = slot * LINE_SIZE
            in_llc = addr in h.llc
            in_mlc = any(addr in h.mlc[c] for c in range(2))
            assert not (in_llc and in_mlc), f"line {addr:#x} duplicated"
            # Directory lists exactly the cores whose MLC holds the line.
            dir_owners = h.llc.directory.owners(addr)
            mlc_owners = {c for c in range(2) if addr in h.mlc[c]}
            assert dir_owners == mlc_owners
