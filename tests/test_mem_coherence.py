"""Cross-core coherence: directory-filtered cache-to-cache transfers."""

import pytest

from repro.mem.hierarchy import HierarchyConfig, MemoryHierarchy
from tests.memtxn import cpu_access, pcie_write

ADDR = 0x200000


def make_hierarchy(num_cores=2):
    return MemoryHierarchy(HierarchyConfig(num_cores=num_cores, l1_enabled=False))


class TestCacheToCache:
    def test_remote_dirty_line_migrates(self):
        h = make_hierarchy()
        cpu_access(h, 0, ADDR, True, 0)  # dirty in core 0's MLC
        result = cpu_access(h, 1, ADDR, False, 10)
        assert result.level == "c2c"
        assert ADDR not in h.mlc[0]
        assert ADDR in h.mlc[1]
        assert h.mlc[1].peek(ADDR).dirty  # dirtiness migrates, no DRAM trip
        assert h.dram.reads == 1  # only core 0's original fill

    def test_directory_tracks_migration(self):
        h = make_hierarchy()
        cpu_access(h, 0, ADDR, False, 0)
        cpu_access(h, 1, ADDR, False, 10)
        assert h.llc.directory.owners(ADDR) == {1}

    def test_no_stale_read_after_remote_write(self):
        """The bug this path fixes: without C2C, core 1 would read DRAM's
        stale copy while core 0 holds dirty data."""
        h = make_hierarchy()
        cpu_access(h, 0, ADDR, True, 0)
        dram_reads_before = h.dram.reads
        cpu_access(h, 1, ADDR, False, 10)
        assert h.dram.reads == dram_reads_before  # served cache-to-cache

    def test_c2c_slower_than_own_mlc_hit(self):
        h = make_hierarchy()
        cpu_access(h, 0, ADDR, False, 0)
        c2c = cpu_access(h, 1, ADDR, False, 10).latency
        own = cpu_access(h, 1, ADDR, False, 20).latency
        assert c2c > own

    def test_write_after_migration_dirties(self):
        h = make_hierarchy()
        cpu_access(h, 0, ADDR, False, 0)  # clean in core 0
        cpu_access(h, 1, ADDR, True, 10)  # migrate + write
        assert h.mlc[1].peek(ADDR).dirty

    def test_counter(self):
        h = make_hierarchy()
        cpu_access(h, 0, ADDR, False, 0)
        cpu_access(h, 1, ADDR, False, 10)
        cpu_access(h, 0, ADDR, False, 20)
        assert h.stats.counters.get("c2c_transfers") == 2

    def test_three_way_ping_pong_stays_consistent(self):
        h = make_hierarchy(num_cores=3)
        for step, core in enumerate([0, 1, 2, 0, 2, 1]):
            cpu_access(h, core, ADDR, step % 2 == 0, step)
            assert h.llc.directory.owners(ADDR) == {core}
            holders = [c for c in range(3) if ADDR in h.mlc[c]]
            assert holders == [core]


class TestWhereDiagnostic:
    def test_where_reports_holders(self):
        h = make_hierarchy()
        pcie_write(h, ADDR, 0)
        loc = h.where(ADDR)
        assert loc["llc"] is True and loc["mlc"] == []
        cpu_access(h, 1, ADDR, False, 10)
        loc = h.where(ADDR)
        assert loc["llc"] is False
        assert loc["mlc"] == [1]
        assert loc["directory"] is True

    def test_where_uncached(self):
        h = make_hierarchy()
        loc = h.where(ADDR)
        assert loc["llc"] is False and loc["mlc"] == [] and loc["directory"] is False
