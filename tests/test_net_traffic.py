"""Unit tests for the steady/bursty traffic generators."""

import pytest

from repro.net.flow import make_flow
from repro.net.packet import Packet
from repro.net.traffic import (
    BurstProfile,
    DiurnalProfile,
    HeavyTailProfile,
    SteadyProfile,
    TrafficGenerator,
)
from repro.sim import Simulator, units


def collect_arrivals(schedule):
    sim = Simulator()
    arrivals = []
    gen = TrafficGenerator(sim, make_flow(0), lambda p: arrivals.append(p))
    count = schedule(gen)
    sim.run()
    return arrivals, count


class TestSteadyProfile:
    def test_inter_arrival_matches_rate(self):
        profile = SteadyProfile(rate_gbps=10.0, duration=0, packet_bytes=1514)
        # 1538 wire bytes at 10 Gbps = 1230.4 ns.
        assert profile.inter_arrival() == pytest.approx(units.nanoseconds(1230.4), rel=1e-3)

    def test_packet_count_and_rate(self):
        profile = SteadyProfile(
            rate_gbps=10.0, duration=units.microseconds(100), packet_bytes=1514
        )
        arrivals, count = collect_arrivals(lambda g: g.schedule_steady(profile))
        assert count == len(arrivals)
        # ~81 packets in 100 us at 10 Gbps.
        assert 78 <= len(arrivals) <= 84

    def test_arrival_times_monotone(self):
        profile = SteadyProfile(rate_gbps=25.0, duration=units.microseconds(50))
        arrivals, _ = collect_arrivals(lambda g: g.schedule_steady(profile))
        times = [p.arrival_time for p in arrivals]
        assert times == sorted(times)

    def test_start_offset(self):
        profile = SteadyProfile(
            rate_gbps=10.0, duration=units.microseconds(10), start=units.microseconds(5)
        )
        arrivals, _ = collect_arrivals(lambda g: g.schedule_steady(profile))
        assert arrivals[0].arrival_time == units.microseconds(5)


class TestBurstProfile:
    def test_burst_length_matches_paper_formula(self):
        # §VI: ring 1024 at 100 Gbps -> ~0.115 ms burst length.
        profile = BurstProfile(burst_rate_gbps=100.0, packets_per_burst=1024)
        assert units.to_milliseconds(profile.burst_length) == pytest.approx(0.126, abs=0.015)

    def test_burst_length_at_10gbps(self):
        # §VI: ring 1024 at 10 Gbps -> ~1.155 ms (paper's approximation).
        profile = BurstProfile(burst_rate_gbps=10.0, packets_per_burst=1024)
        assert units.to_milliseconds(profile.burst_length) == pytest.approx(1.26, abs=0.11)

    def test_packets_per_burst_delivered(self):
        profile = BurstProfile(burst_rate_gbps=100.0, packets_per_burst=64, num_bursts=3)
        arrivals, count = collect_arrivals(lambda g: g.schedule_bursts(profile))
        assert count == 192
        assert len(arrivals) == 192

    def test_burst_period_spacing(self):
        profile = BurstProfile(
            burst_rate_gbps=100.0,
            packets_per_burst=4,
            num_bursts=2,
            burst_period=units.milliseconds(1),
        )
        arrivals, _ = collect_arrivals(lambda g: g.schedule_bursts(profile))
        assert arrivals[4].arrival_time - arrivals[0].arrival_time == units.milliseconds(1)

    def test_app_class_propagated(self):
        sim = Simulator()
        out = []
        gen = TrafficGenerator(sim, make_flow(0), out.append, app_class=1)
        gen.schedule_bursts(BurstProfile(burst_rate_gbps=100.0, packets_per_burst=2))
        sim.run()
        assert all(p.app_class == 1 for p in out)


class TestPoissonProfile:
    def test_average_rate_close_to_target(self):
        sim = Simulator()
        arrivals = []
        gen = TrafficGenerator(sim, make_flow(0), arrivals.append)
        gen.schedule_poisson(25.0, units.milliseconds(2), seed=3)
        sim.run()
        # 25 Gbps of 1538 B wire frames over 2 ms -> ~4065 packets.
        assert len(arrivals) == pytest.approx(4065, rel=0.1)

    def test_seeded_reproducibility(self):
        def times(seed):
            sim = Simulator()
            out = []
            gen = TrafficGenerator(sim, make_flow(0), out.append)
            gen.schedule_poisson(10.0, units.microseconds(500), seed=seed)
            sim.run()
            return [p.arrival_time for p in out]

        assert times(7) == times(7)
        assert times(7) != times(8)

    def test_interarrival_variability(self):
        """Poisson gaps vary (unlike the steady profile's fixed gap)."""
        sim = Simulator()
        out = []
        gen = TrafficGenerator(sim, make_flow(0), out.append)
        gen.schedule_poisson(10.0, units.milliseconds(1), seed=1)
        sim.run()
        gaps = {
            out[i + 1].arrival_time - out[i].arrival_time
            for i in range(len(out) - 1)
        }
        assert len(gaps) > len(out) // 2

    def test_invalid_rate(self):
        sim = Simulator()
        gen = TrafficGenerator(sim, make_flow(0), lambda p: None)
        with pytest.raises(ValueError):
            gen.schedule_poisson(1e12, units.microseconds(1))


class TestHeavyTailProfile:
    def test_mean_rate_close_to_target(self):
        # The Pareto gaps are scaled so their mean equals the wire-rate
        # gap: over a long window the offered load approaches the target.
        profile = HeavyTailProfile(
            rate_gbps=25.0, duration=units.milliseconds(4), alpha=1.8, seed=11
        )
        arrivals, _ = collect_arrivals(lambda g: g.schedule_heavy_tail(profile))
        # 25 Gbps of 1538 B frames over 4 ms -> ~8130 packets; the heavy
        # tail makes the sample mean noisy, hence the loose band.
        assert len(arrivals) == pytest.approx(8130, rel=0.35)
        times = [p.arrival_time for p in arrivals]
        assert times == sorted(times)

    def test_seeded_reproducibility(self):
        def times(seed):
            profile = HeavyTailProfile(
                rate_gbps=10.0, duration=units.milliseconds(1), seed=seed
            )
            arrivals, _ = collect_arrivals(
                lambda g: g.schedule_heavy_tail(profile)
            )
            return [p.arrival_time for p in arrivals]

        assert times(7) == times(7)
        assert times(7) != times(8)

    def test_burstier_than_poisson(self):
        # Heavy-tailed gaps: the max gap dwarfs the median gap far more
        # than the exponential's ~log(n) ratio.
        profile = HeavyTailProfile(
            rate_gbps=10.0, duration=units.milliseconds(2), alpha=1.2, seed=3
        )
        arrivals, _ = collect_arrivals(lambda g: g.schedule_heavy_tail(profile))
        gaps = sorted(
            arrivals[i + 1].arrival_time - arrivals[i].arrival_time
            for i in range(len(arrivals) - 1)
        )
        median = gaps[len(gaps) // 2]
        assert gaps[-1] > 20 * median

    def test_alpha_must_exceed_one(self):
        sim = Simulator()
        gen = TrafficGenerator(sim, make_flow(0), lambda p: None)
        with pytest.raises(ValueError):
            gen.schedule_heavy_tail(
                HeavyTailProfile(
                    rate_gbps=10.0, duration=units.microseconds(10), alpha=1.0
                )
            )


class TestDiurnalProfile:
    def test_rate_shape(self):
        profile = DiurnalProfile(
            trough_rate_gbps=10.0,
            peak_rate_gbps=30.0,
            duration=units.milliseconds(1),
            period=units.milliseconds(1),
        )
        assert profile.rate_at(0) == pytest.approx(10.0)
        assert profile.rate_at(units.milliseconds(1) // 2) == pytest.approx(30.0)
        assert profile.rate_at(units.milliseconds(1)) == pytest.approx(10.0)
        assert profile.mean_rate_gbps() == pytest.approx(20.0)

    def test_mean_rate_over_whole_periods(self):
        # Over an integer number of periods the realized load sits near
        # the trough/peak midpoint.
        period = units.milliseconds(1)
        profile = DiurnalProfile(
            trough_rate_gbps=5.0,
            peak_rate_gbps=15.0,
            duration=2 * period,
            period=period,
            seed=9,
        )
        arrivals, _ = collect_arrivals(lambda g: g.schedule_diurnal(profile))
        # 10 Gbps mean of 1538 B frames over 2 ms -> ~1626 packets.
        assert len(arrivals) == pytest.approx(1626, rel=0.15)

    def test_peak_half_busier_than_trough_half(self):
        period = units.milliseconds(1)
        profile = DiurnalProfile(
            trough_rate_gbps=2.0,
            peak_rate_gbps=20.0,
            duration=period,
            period=period,
            seed=4,
        )
        arrivals, _ = collect_arrivals(lambda g: g.schedule_diurnal(profile))
        mid_start, mid_end = period // 4, 3 * period // 4
        middle = sum(1 for p in arrivals if mid_start <= p.arrival_time < mid_end)
        edges = len(arrivals) - middle
        assert middle > 2 * edges

    def test_seeded_reproducibility(self):
        def times(seed):
            profile = DiurnalProfile(
                trough_rate_gbps=5.0,
                peak_rate_gbps=10.0,
                duration=units.microseconds(500),
                period=units.microseconds(250),
                seed=seed,
            )
            arrivals, _ = collect_arrivals(lambda g: g.schedule_diurnal(profile))
            return [p.arrival_time for p in arrivals]

        assert times(7) == times(7)
        assert times(7) != times(8)

    def test_invalid_rates_rejected(self):
        sim = Simulator()
        gen = TrafficGenerator(sim, make_flow(0), lambda p: None)
        with pytest.raises(ValueError):
            gen.schedule_diurnal(
                DiurnalProfile(
                    trough_rate_gbps=20.0,
                    peak_rate_gbps=10.0,
                    duration=units.microseconds(10),
                )
            )
        with pytest.raises(ValueError):
            gen.schedule_diurnal(
                DiurnalProfile(
                    trough_rate_gbps=-1.0,
                    peak_rate_gbps=10.0,
                    duration=units.microseconds(10),
                )
            )


class TestImixProfile:
    def test_sizes_from_distribution(self):
        from repro.net.traffic import IMIX_DISTRIBUTION

        sim = Simulator()
        out = []
        gen = TrafficGenerator(sim, make_flow(0), out.append)
        gen.schedule_imix(10.0, units.milliseconds(1), seed=5)
        sim.run()
        allowed = {s for s, _ in IMIX_DISTRIBUTION}
        assert {p.size_bytes for p in out} <= allowed
        # The 7:4:1 mix makes 64 B the most common size.
        sizes = [p.size_bytes for p in out]
        assert sizes.count(64) > sizes.count(1518)

    def test_offered_load_near_target(self):
        sim = Simulator()
        out = []
        gen = TrafficGenerator(sim, make_flow(0), out.append)
        duration = units.milliseconds(2)
        gen.schedule_imix(10.0, duration, seed=5)
        sim.run()
        wire_bytes = sum(p.wire_bytes for p in out)
        gbps = units.bytes_to_gbps(wire_bytes, duration)
        assert gbps == pytest.approx(10.0, rel=0.1)

    def test_empty_distribution_rejected(self):
        sim = Simulator()
        gen = TrafficGenerator(sim, make_flow(0), lambda p: None)
        with pytest.raises(ValueError):
            gen.schedule_imix(10.0, units.microseconds(1), distribution=())
