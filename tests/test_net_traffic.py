"""Unit tests for the steady/bursty traffic generators."""

import pytest

from repro.net.flow import make_flow
from repro.net.packet import Packet
from repro.net.traffic import BurstProfile, SteadyProfile, TrafficGenerator
from repro.sim import Simulator, units


def collect_arrivals(schedule):
    sim = Simulator()
    arrivals = []
    gen = TrafficGenerator(sim, make_flow(0), lambda p: arrivals.append(p))
    count = schedule(gen)
    sim.run()
    return arrivals, count


class TestSteadyProfile:
    def test_inter_arrival_matches_rate(self):
        profile = SteadyProfile(rate_gbps=10.0, duration=0, packet_bytes=1514)
        # 1538 wire bytes at 10 Gbps = 1230.4 ns.
        assert profile.inter_arrival() == pytest.approx(units.nanoseconds(1230.4), rel=1e-3)

    def test_packet_count_and_rate(self):
        profile = SteadyProfile(
            rate_gbps=10.0, duration=units.microseconds(100), packet_bytes=1514
        )
        arrivals, count = collect_arrivals(lambda g: g.schedule_steady(profile))
        assert count == len(arrivals)
        # ~81 packets in 100 us at 10 Gbps.
        assert 78 <= len(arrivals) <= 84

    def test_arrival_times_monotone(self):
        profile = SteadyProfile(rate_gbps=25.0, duration=units.microseconds(50))
        arrivals, _ = collect_arrivals(lambda g: g.schedule_steady(profile))
        times = [p.arrival_time for p in arrivals]
        assert times == sorted(times)

    def test_start_offset(self):
        profile = SteadyProfile(
            rate_gbps=10.0, duration=units.microseconds(10), start=units.microseconds(5)
        )
        arrivals, _ = collect_arrivals(lambda g: g.schedule_steady(profile))
        assert arrivals[0].arrival_time == units.microseconds(5)


class TestBurstProfile:
    def test_burst_length_matches_paper_formula(self):
        # §VI: ring 1024 at 100 Gbps -> ~0.115 ms burst length.
        profile = BurstProfile(burst_rate_gbps=100.0, packets_per_burst=1024)
        assert units.to_milliseconds(profile.burst_length) == pytest.approx(0.126, abs=0.015)

    def test_burst_length_at_10gbps(self):
        # §VI: ring 1024 at 10 Gbps -> ~1.155 ms (paper's approximation).
        profile = BurstProfile(burst_rate_gbps=10.0, packets_per_burst=1024)
        assert units.to_milliseconds(profile.burst_length) == pytest.approx(1.26, abs=0.11)

    def test_packets_per_burst_delivered(self):
        profile = BurstProfile(burst_rate_gbps=100.0, packets_per_burst=64, num_bursts=3)
        arrivals, count = collect_arrivals(lambda g: g.schedule_bursts(profile))
        assert count == 192
        assert len(arrivals) == 192

    def test_burst_period_spacing(self):
        profile = BurstProfile(
            burst_rate_gbps=100.0,
            packets_per_burst=4,
            num_bursts=2,
            burst_period=units.milliseconds(1),
        )
        arrivals, _ = collect_arrivals(lambda g: g.schedule_bursts(profile))
        assert arrivals[4].arrival_time - arrivals[0].arrival_time == units.milliseconds(1)

    def test_app_class_propagated(self):
        sim = Simulator()
        out = []
        gen = TrafficGenerator(sim, make_flow(0), out.append, app_class=1)
        gen.schedule_bursts(BurstProfile(burst_rate_gbps=100.0, packets_per_burst=2))
        sim.run()
        assert all(p.app_class == 1 for p in out)


class TestPoissonProfile:
    def test_average_rate_close_to_target(self):
        sim = Simulator()
        arrivals = []
        gen = TrafficGenerator(sim, make_flow(0), arrivals.append)
        gen.schedule_poisson(25.0, units.milliseconds(2), seed=3)
        sim.run()
        # 25 Gbps of 1538 B wire frames over 2 ms -> ~4065 packets.
        assert len(arrivals) == pytest.approx(4065, rel=0.1)

    def test_seeded_reproducibility(self):
        def times(seed):
            sim = Simulator()
            out = []
            gen = TrafficGenerator(sim, make_flow(0), out.append)
            gen.schedule_poisson(10.0, units.microseconds(500), seed=seed)
            sim.run()
            return [p.arrival_time for p in out]

        assert times(7) == times(7)
        assert times(7) != times(8)

    def test_interarrival_variability(self):
        """Poisson gaps vary (unlike the steady profile's fixed gap)."""
        sim = Simulator()
        out = []
        gen = TrafficGenerator(sim, make_flow(0), out.append)
        gen.schedule_poisson(10.0, units.milliseconds(1), seed=1)
        sim.run()
        gaps = {
            out[i + 1].arrival_time - out[i].arrival_time
            for i in range(len(out) - 1)
        }
        assert len(gaps) > len(out) // 2

    def test_invalid_rate(self):
        sim = Simulator()
        gen = TrafficGenerator(sim, make_flow(0), lambda p: None)
        with pytest.raises(ValueError):
            gen.schedule_poisson(1e12, units.microseconds(1))


class TestImixProfile:
    def test_sizes_from_distribution(self):
        from repro.net.traffic import IMIX_DISTRIBUTION

        sim = Simulator()
        out = []
        gen = TrafficGenerator(sim, make_flow(0), out.append)
        gen.schedule_imix(10.0, units.milliseconds(1), seed=5)
        sim.run()
        allowed = {s for s, _ in IMIX_DISTRIBUTION}
        assert {p.size_bytes for p in out} <= allowed
        # The 7:4:1 mix makes 64 B the most common size.
        sizes = [p.size_bytes for p in out]
        assert sizes.count(64) > sizes.count(1518)

    def test_offered_load_near_target(self):
        sim = Simulator()
        out = []
        gen = TrafficGenerator(sim, make_flow(0), out.append)
        duration = units.milliseconds(2)
        gen.schedule_imix(10.0, duration, seed=5)
        sim.run()
        wire_bytes = sum(p.wire_bytes for p in out)
        gbps = units.bytes_to_gbps(wire_bytes, duration)
        assert gbps == pytest.approx(10.0, rel=0.1)

    def test_empty_distribution_rejected(self):
        sim = Simulator()
        gen = TrafficGenerator(sim, make_flow(0), lambda p: None)
        with pytest.raises(ValueError):
            gen.schedule_imix(10.0, units.microseconds(1), distribution=())
