"""Tests for the PMD loop and the antagonist driver."""

import pytest

from repro.core.policies import ddio, invalidate_only
from repro.harness.server import ServerConfig, SimulatedServer
from repro.sim import units


def small_server(policy=None, app="touchdrop", ring=32, **kwargs):
    cfg = ServerConfig(
        policy=policy or ddio(), app=app, ring_size=ring, **kwargs
    )
    return SimulatedServer(cfg)


class TestPollModeDriver:
    def test_processes_all_packets(self):
        server = small_server()
        server.start()
        server.inject_bursty(100.0, packets_per_burst=16)
        server.run_until_drained(units.milliseconds(2))
        assert len(server.completed_packets()) == 32  # 16 per NF core

    def test_batching_respects_limit(self):
        server = small_server(ring=64)
        server.start()
        server.inject_bursty(100.0, packets_per_burst=64)
        server.run_until_drained(units.milliseconds(4))
        driver = server.drivers[0]
        assert driver.batches >= 2  # 64 packets can't fit one 32-batch

    def test_descriptors_freed_after_processing(self):
        server = small_server()
        server.start()
        server.inject_bursty(100.0, packets_per_burst=16)
        server.run_until_drained(units.milliseconds(2))
        for queue in server.nic.queues.values():
            assert queue.ring.occupancy() == 0

    def test_completion_times_set(self):
        server = small_server()
        server.start()
        server.inject_bursty(100.0, packets_per_burst=8)
        server.run_until_drained(units.milliseconds(2))
        for p in server.completed_packets():
            assert p.completion_time is not None
            assert p.latency > 0

    def test_self_invalidation_requires_maintenance_unit(self):
        from repro.cpu.dpdk import PollModeDriver

        with pytest.raises(ValueError):
            PollModeDriver(None, None, None, None, None, maintenance=None, self_invalidate=True)

    def test_self_invalidation_invalidates_buffers(self):
        server = small_server(policy=invalidate_only())
        server.start()
        server.inject_bursty(100.0, packets_per_burst=16)
        server.run_until_drained(units.milliseconds(2))
        assert server.stats.counters.get("self_invalidations") > 0

    def test_latency_includes_descriptor_writeback_delay(self):
        server = small_server()
        server.start()
        server.inject_bursty(100.0, packets_per_burst=1)
        server.run_until_drained(units.milliseconds(2))
        lat = server.packet_latencies_ns()
        # Lower bound: NIC pipeline + descriptor writeback (~2 us total).
        assert min(lat) > 1900


class TestL2FwdDriver:
    def test_tx_happens_and_ring_drains(self):
        server = small_server(app="l2fwd")
        server.start()
        server.inject_bursty(100.0, packets_per_burst=16)
        server.run_until_drained(units.milliseconds(4))
        assert server.nic.total_tx == 32
        for queue in server.nic.queues.values():
            assert queue.ring.occupancy() == 0

    def test_tx_pulls_lines_back_to_llc(self):
        """Fig. 3 right: PCIe TX reads invalidate MLC copies."""
        server = small_server(app="l2fwd")
        server.start()
        server.inject_bursty(100.0, packets_per_burst=4)
        server.run_until_drained(units.milliseconds(4))
        assert server.stats.counters.get("pcie_reads") > 0


class TestAntagonistDriver:
    def test_antagonist_accesses_accumulate(self):
        server = small_server(antagonist=True)
        server.start()
        server.run(units.microseconds(100))
        assert server.antagonist.accesses_done > 100

    def test_antagonist_samples_recorded(self):
        server = small_server(antagonist=True)
        server.start()
        server.run(units.microseconds(100))
        samples = server.antagonist_driver.samples
        assert len(samples) > 10
        times = [s[0] for s in samples]
        assert times == sorted(times)

    def test_access_ns_between_window(self):
        server = small_server(antagonist=True)
        server.start()
        server.run(units.microseconds(200))
        ns = server.antagonist_driver.access_ns_between(
            units.microseconds(10), units.microseconds(190)
        )
        assert ns is not None and 1.0 < ns < 200.0

    def test_access_ns_empty_window(self):
        server = small_server(antagonist=True)
        server.start()
        server.run(units.microseconds(50))
        assert server.antagonist_driver.access_ns_between(0, 1) is None

    def test_antagonist_mlc_is_small(self):
        """§VI: the antagonist core runs with a 256 KB MLC."""
        server = small_server(antagonist=True)
        core_id = server.config.antagonist_core
        assert server.hierarchy.mlc[core_id].config.size_bytes == 256 * 1024
