"""Unit tests for the ASCII report renderer."""

import pytest

from repro.harness.report import format_table, sparkline, timeline_block


class TestFormatTable:
    def test_alignment_and_borders(self):
        out = format_table(["a", "bb"], [[1, 2], [33, 4]])
        lines = out.splitlines()
        assert lines[0].startswith("+")
        assert "| a " in lines[1]
        widths = {len(l) for l in lines}
        assert len(widths) == 1  # all lines equal width

    def test_title_included(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_none_rendered_as_dash(self):
        out = format_table(["x"], [[None]])
        assert "| -" in out

    def test_float_formatting(self):
        out = format_table(["x"], [[0.123456]])
        assert "0.123" in out

    def test_large_float_formatting(self):
        out = format_table(["x"], [[12345.6]])
        assert "12,346" in out

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestSparkline:
    def test_empty_series(self):
        assert sparkline([]) == "(empty)"

    def test_peak_is_full_block(self):
        line = sparkline([(0, 0.0), (1, 10.0), (2, 5.0)])
        assert "█" in line

    def test_zero_series(self):
        line = sparkline([(0, 0.0), (1, 0.0)])
        assert set(line) <= {" "}

    def test_downsampling_keeps_width(self):
        series = [(i, float(i % 7)) for i in range(1000)]
        assert len(sparkline(series, width=60)) <= 61

    def test_timeline_block_reports_peak(self):
        block = timeline_block("test", [(0, 1.0), (1, 42.0)])
        assert "42.00" in block and "test" in block
