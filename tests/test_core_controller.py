"""Unit tests for the IDIO controller (Alg. 1 data + control planes)."""

import pytest

from repro.core.config import IDIOConfig
from repro.core.controller import IDIOController
from repro.mem.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.obs.events import MlcWritebackEvent
from repro.pcie.tlp import IdioTag
from repro.sim import Simulator, units


def make_controller(static=False, prefetch=True, direct_dram=True, mlc_thr=50.0):
    sim = Simulator()
    h = MemoryHierarchy(HierarchyConfig(num_cores=2, l1_enabled=False))
    ctl = IDIOController(
        sim,
        h,
        config=IDIOConfig(mlc_threshold_mtps=mlc_thr),
        static_mlc=static,
        prefetch_enabled=prefetch,
        direct_dram_enabled=direct_dram,
    )
    return sim, h, ctl


class TestDataPlane:
    def test_header_always_prefetched(self):
        sim, h, ctl = make_controller()
        placement = ctl.steer(IdioTag(dest_core=0, is_header=True), 0x1000, 0)
        assert placement == "llc"
        assert ctl.decisions["header_prefetch"] == 1
        assert len(ctl.prefetchers[0]) == 1

    def test_class1_goes_to_dram(self):
        sim, h, ctl = make_controller()
        placement = ctl.steer(IdioTag(app_class=1), 0x1000, 0)
        assert placement == "dram"
        assert ctl.decisions["direct_dram"] == 1

    def test_class1_header_still_prefetched(self):
        """Alg. 1 checks isHeader before appClass: headers of class-1
        packets stay on the cache path (short use distance)."""
        sim, h, ctl = make_controller()
        placement = ctl.steer(IdioTag(app_class=1, is_header=True), 0x1000, 0)
        assert placement == "llc"

    def test_class1_to_llc_when_direct_dram_disabled(self):
        sim, h, ctl = make_controller(direct_dram=False)
        assert ctl.steer(IdioTag(app_class=1), 0x1000, 0) == "llc"

    def test_payload_stays_in_llc_when_status_llc(self):
        sim, h, ctl = make_controller()
        placement = ctl.steer(IdioTag(dest_core=0), 0x1000, 0)
        assert placement == "llc"
        assert ctl.decisions["llc"] == 1
        assert len(ctl.prefetchers[0]) == 0  # no hint

    def test_burst_flips_status_to_mlc(self):
        sim, h, ctl = make_controller()
        # The burst-flagged line resets the FSM and is itself steered to
        # the MLC (Alg. 1 line 3 runs before the placement decision).
        ctl.steer(IdioTag(dest_core=0, is_burst=True), 0x1000, 0)
        placement = ctl.steer(IdioTag(dest_core=0), 0x1040, 0)
        assert placement == "llc"  # data still lands in LLC...
        assert ctl.decisions["mlc_prefetch"] == 2  # ...plus prefetch hints

    def test_static_mode_always_steers_mlc(self):
        sim, h, ctl = make_controller(static=True)
        ctl.steer(IdioTag(dest_core=1), 0x1000, 0)
        assert ctl.decisions["mlc_prefetch"] == 1

    def test_burst_only_affects_target_core(self):
        sim, h, ctl = make_controller()
        ctl.steer(IdioTag(dest_core=0, is_burst=True), 0x1000, 0)
        ctl.steer(IdioTag(dest_core=1), 0x2000, 0)
        assert ctl.decisions["llc"] == 1  # core 1 unaffected

    def test_prefetch_disabled_controller(self):
        sim, h, ctl = make_controller(prefetch=False)
        ctl.steer(IdioTag(dest_core=0, is_header=True), 0x1000, 0)
        assert len(ctl.prefetchers[0]) == 0


class TestControlPlane:
    def test_pressure_disables_steering_after_three_intervals(self):
        sim, h, ctl = make_controller(mlc_thr=50.0)
        ctl.steer(IdioTag(dest_core=0, is_burst=True), 0x1000, 0)
        assert ctl.status_of(0) == "MLC"
        # Inject 100 MLC writebacks per 1 us interval for 3 intervals.
        def pressure():
            for _ in range(100):
                h.bus.publish(MlcWritebackEvent(0, sim.now))
        for i in range(3):
            sim.schedule_at(units.microseconds(i) + 1, pressure)
        sim.run(until=units.microseconds(3) + 2)
        assert ctl.status_of(0) == "LLC"

    def test_low_pressure_keeps_steering(self):
        sim, h, ctl = make_controller(mlc_thr=50.0)
        ctl.steer(IdioTag(dest_core=0, is_burst=True), 0x1000, 0)
        sim.run(until=units.microseconds(5))
        assert ctl.status_of(0) == "MLC"

    def test_mlc_wb_counter_resets_each_interval(self):
        sim, h, ctl = make_controller()
        h.bus.publish(MlcWritebackEvent(0, 0))
        sim.run(until=units.microseconds(1) + 1)
        assert ctl.mlc_wb[0] == 0
        assert ctl.mlc_wb_acc[0] == 1

    def test_average_window_rolls_over(self):
        sim, h, ctl = make_controller()
        ctl.config.average_window_samples = 4  # shrink for the test
        def tick_wb():
            h.bus.publish(MlcWritebackEvent(0, sim.now))
        for i in range(4):
            sim.schedule_at(units.microseconds(i) + 1, tick_wb)
        sim.run(until=units.microseconds(4) + 2)
        assert ctl.mlc_wb_avg[0] == pytest.approx(1.0)
        assert ctl.mlc_wb_acc[0] == 0

    def test_threshold_units(self):
        cfg = IDIOConfig(mlc_threshold_mtps=50.0)
        # 50 MTPS at a 1 us interval = 50 transactions/interval.
        assert cfg.mlc_threshold_per_interval == pytest.approx(50.0)

    def test_stop_halts_control_plane(self):
        sim, h, ctl = make_controller()
        ctl.stop()
        sim.run(until=units.microseconds(10))  # no infinite periodic task


class TestConfigValidation:
    def test_defaults_valid(self):
        IDIOConfig().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"control_interval": 0},
            {"average_window_samples": 0},
            {"mlc_threshold_mtps": -1},
            {"prefetch_queue_depth": 0},
            {"num_cores": 0},
            {"num_cores": 64},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            IDIOConfig(**kwargs).validate()
