"""Overload and failure-injection behavior.

The simulator must degrade the way real systems do: rings fill, packets
drop, latency grows — and never lose accounting consistency.
"""

import pytest

from repro.core.policies import ddio, idio
from repro.harness.experiment import Experiment, run_experiment
from repro.harness.server import ServerConfig
from repro.sim import units


def steady(rate, policy=None, ring=256, duration_us=500.0, **kwargs):
    exp = Experiment(
        name="overload",
        server=ServerConfig(
            policy=policy or ddio(), app="touchdrop", ring_size=ring, **kwargs
        ),
        traffic="steady",
        steady_rate_gbps_per_nf=rate,
        steady_duration=units.microseconds(duration_us),
    )
    return run_experiment(exp)


class TestOverload:
    def test_no_drops_below_capacity(self):
        result = steady(8.0)
        assert result.rx_drops == 0

    def test_drops_above_capacity(self):
        """The per-core cost model saturates near the paper's ~12 Gbps;
        40 Gbps per core must overwhelm the ring."""
        result = steady(40.0, duration_us=800.0)
        assert result.rx_drops > 0

    def test_accounting_consistent_under_drops(self):
        result = steady(40.0, duration_us=800.0)
        assert result.rx_packets + result.rx_drops == result.offered_packets
        assert result.completed == result.rx_packets

    def test_dropped_packets_produce_no_dma(self):
        """A dropped packet must not touch the memory hierarchy."""
        result = steady(40.0, duration_us=800.0)
        expected_lines = result.rx_packets * (24 + 2)  # data + descriptor
        assert result.window.pcie_writes == expected_lines

    def test_latency_grows_with_load(self):
        light = steady(4.0)
        heavy = steady(11.0, duration_us=800.0)
        assert heavy.p99_ns > light.p99_ns

    def test_small_ring_drops_earlier(self):
        big = steady(14.0, ring=1024, duration_us=600.0)
        small = steady(14.0, ring=64, duration_us=600.0)
        assert small.rx_drops >= big.rx_drops

    def test_idio_drops_no_more_than_ddio(self):
        base = steady(14.0, duration_us=800.0)
        ours = steady(14.0, policy=idio(), duration_us=800.0)
        assert ours.rx_drops <= base.rx_drops


class TestBurstOverload:
    def test_burst_larger_than_ring_drops(self):
        """§VI sizes bursts to exactly the ring to avoid drops; a burst
        of 2x the ring must drop the excess."""
        exp = Experiment(
            name="oversized-burst",
            server=ServerConfig(app="touchdrop", ring_size=64),
            traffic="bursty",
            burst_rate_gbps=100.0,
            packets_per_burst=128,
        )
        result = run_experiment(exp)
        assert result.rx_drops > 0
        assert result.rx_packets + result.rx_drops == 256

    def test_ring_sized_burst_has_no_drops(self):
        exp = Experiment(
            name="ring-sized-burst",
            server=ServerConfig(app="touchdrop", ring_size=64),
            traffic="bursty",
            burst_rate_gbps=100.0,
        )
        result = run_experiment(exp)
        assert result.rx_drops == 0
