"""Unit tests for the scorecard machinery (full runs live in the CLI)."""

from repro.harness.validation import VALIDATORS, Check, Scorecard


class TestScorecard:
    def test_counts(self):
        card = Scorecard()
        card.add("fig9", "a", "x", "y", True)
        card.add("fig9", "b", "x", "y", False)
        assert card.passed == 1
        assert card.failed == 1
        assert not card.all_passed

    def test_all_passed(self):
        card = Scorecard()
        card.add("fig9", "a", "x", "y", True)
        assert card.all_passed

    def test_render_contains_verdicts(self):
        card = Scorecard()
        card.add("fig10", "burst time improves", "0.8x", "0.85x", True)
        card.add("fig12", "p99 improves", "30%", "-2%", False)
        text = card.render()
        assert "PASS" in text and "FAIL" in text
        assert "1/2 claims reproduced" in text

    def test_check_fields(self):
        check = Check("fig9", "claim", "paper", "measured", True)
        assert check.figure == "fig9" and check.passed

    def test_validators_registered_for_every_eval_figure(self):
        names = {v.__name__ for v in VALIDATORS}
        for fig in ("fig9", "fig10", "fig11", "fig12", "fig13", "fig14"):
            assert f"validate_{fig}" in names
        assert "validate_extensions" in names
