"""Edge cases of the IDIO controller and server lifecycle."""

import pytest

from repro.core.config import IDIOConfig
from repro.core.controller import IDIOController
from repro.core.policies import idio
from repro.harness.server import ServerConfig, SimulatedServer
from repro.mem.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.obs.events import MlcWritebackEvent
from repro.pcie.tlp import IdioTag
from repro.sim import Simulator, units


class TestControllerEdgeCases:
    def make(self):
        sim = Simulator()
        h = MemoryHierarchy(HierarchyConfig(num_cores=2, l1_enabled=False))
        return sim, h, IDIOController(sim, h)

    def test_dest_core_beyond_topology_is_safe(self):
        """The TLP encodes up to 63 cores; a tag naming a core this socket
        does not have must not crash (misrouted/hot-plugged traffic)."""
        sim, h, ctl = self.make()
        placement = ctl.steer(IdioTag(dest_core=42), 0x1000, 0)
        assert placement == "llc"
        placement = ctl.steer(IdioTag(dest_core=42, is_header=True), 0x1040, 0)
        assert placement == "llc"
        placement = ctl.steer(IdioTag(dest_core=42, is_burst=True), 0x1080, 0)
        assert placement == "llc"

    def test_class1_unaffected_by_fsm_state(self):
        sim, h, ctl = self.make()
        ctl.steer(IdioTag(dest_core=0, is_burst=True), 0x1000, 0)  # MLC mode
        assert ctl.steer(IdioTag(dest_core=0, app_class=1), 0x1040, 0) == "dram"

    def test_status_of_static(self):
        sim = Simulator()
        h = MemoryHierarchy(HierarchyConfig(num_cores=1, l1_enabled=False))
        ctl = IDIOController(sim, h, static_mlc=True)
        assert ctl.status_of(0) == "MLC"

    def test_multiple_controllers_not_required_but_coexist(self):
        """Two controllers on one hierarchy both observe writebacks
        (regression guard for the event bus fan-out)."""
        sim = Simulator()
        h = MemoryHierarchy(HierarchyConfig(num_cores=1, l1_enabled=False))
        a = IDIOController(sim, h)
        b = IDIOController(sim, h)
        h.bus.publish(MlcWritebackEvent(0, 0))  # delivered to both
        assert a.mlc_wb[0] == 1 and b.mlc_wb[0] == 1


class TestServerLifecycle:
    def test_stop_halts_all_periodic_agents(self):
        server = SimulatedServer(ServerConfig(policy=idio(), ring_size=32,
                                              antagonist=True))
        server.start()
        server.inject_bursty(100.0, packets_per_burst=4)
        server.run_until_drained(units.milliseconds(1))
        server.stop()
        before = server.sim.events_fired
        # After stop, only already-queued events may fire; the simulation
        # must drain to silence instead of ticking forever.
        server.sim.run(until=server.sim.now + units.milliseconds(5))
        after = server.sim.events_fired
        assert after - before < 200

    def test_results_available_after_stop(self):
        server = SimulatedServer(ServerConfig(ring_size=32))
        server.start()
        server.inject_bursty(100.0, packets_per_burst=4)
        server.run_until_drained(units.milliseconds(1))
        server.stop()
        assert len(server.packet_latencies_ns()) == 8
