"""Unit + property tests for the DPDK-style buffer pool."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.mempool import BufferPool, BufferPoolExhausted


class TestBufferPool:
    def test_alloc_free_roundtrip(self):
        pool = BufferPool(0x1000, 2048, 4)
        addr = pool.alloc()
        assert 0x1000 <= addr < 0x1000 + 4 * 2048
        pool.free(addr)
        assert len(pool) == 4

    def test_exhaustion_raises(self):
        pool = BufferPool(0x1000, 2048, 2)
        pool.alloc()
        pool.alloc()
        with pytest.raises(BufferPoolExhausted):
            pool.alloc()

    def test_lifo_recycling(self):
        pool = BufferPool(0x1000, 2048, 4)
        addr = pool.alloc()
        pool.free(addr)
        assert pool.alloc() == addr  # most recently freed comes back first

    def test_reserve_specific(self):
        pool = BufferPool(0x1000, 2048, 4)
        pool.reserve(0x1000)
        remaining = {pool.alloc() for _ in range(3)}
        assert 0x1000 not in remaining

    def test_reserve_unavailable_raises(self):
        pool = BufferPool(0x1000, 2048, 2)
        pool.reserve(0x1000)
        with pytest.raises(ValueError):
            pool.reserve(0x1000)

    def test_foreign_address_rejected(self):
        pool = BufferPool(0x1000, 2048, 2)
        with pytest.raises(ValueError):
            pool.free(0x9000000)

    def test_misaligned_address_rejected(self):
        pool = BufferPool(0x1000, 2048, 2)
        with pytest.raises(ValueError):
            pool.free(0x1000 + 100)

    def test_span_and_addresses(self):
        pool = BufferPool(0, 2048, 3)
        assert pool.span_bytes() == 6144
        assert pool.addresses() == [0, 2048, 4096]

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            BufferPool(0, 0, 4)
        with pytest.raises(ValueError):
            BufferPool(0, 2048, 0)

    @settings(max_examples=30)
    @given(st.lists(st.sampled_from(["alloc", "free"]), min_size=1, max_size=100))
    def test_conservation_property(self, ops):
        pool = BufferPool(0, 2048, 8)
        held = []
        for op in ops:
            if op == "alloc":
                if len(pool):
                    held.append(pool.alloc())
                else:
                    with pytest.raises(BufferPoolExhausted):
                        pool.alloc()
            elif held:
                pool.free(held.pop())
            assert len(pool) + len(held) == 8
            assert len(set(held)) == len(held)  # no double allocation
