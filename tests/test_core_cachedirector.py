"""Tests for the sliced (NUCA) LLC and the CacheDirector baseline."""

import pytest

from repro.core.cachedirector import CacheDirectorController
from repro.core.policies import cachedirector, ddio, policy_by_name
from repro.harness.experiment import Experiment, run_experiment
from repro.harness.server import ServerConfig, SimulatedServer
from repro.mem.cache import CacheConfig
from repro.mem.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.mem.line import LINE_SIZE
from repro.mem.llc import NonInclusiveLLC
from repro.mem.stats import StatsBundle
from repro.pcie.tlp import IdioTag
from repro.sim import Simulator, units


def make_sliced_llc(slices=8, hop=units.cycles(2)):
    cfg = CacheConfig("llc", 8 * 64 * LINE_SIZE, 8, units.cycles(24))
    return NonInclusiveLLC(cfg, StatsBundle(), slices=slices, hop_latency=hop)


class TestSlicedLLC:
    def test_monolithic_has_single_slice(self):
        llc = make_sliced_llc(slices=0)
        assert llc.slice_of(0x1234540) == 0
        assert llc.access_latency(3, 0x1234540) == llc.config.latency

    def test_slice_hash_in_range_and_spread(self):
        llc = make_sliced_llc(slices=8)
        seen = {llc.slice_of(i * LINE_SIZE) for i in range(4096)}
        assert seen == set(range(8))  # the hash reaches every slice

    def test_hash_deterministic(self):
        llc = make_sliced_llc()
        assert llc.slice_of(0x40000) == llc.slice_of(0x40000)

    def test_local_slice_is_fastest(self):
        llc = make_sliced_llc(slices=8)
        addr = 0x40000
        home = llc.slice_of(addr)
        local = llc.access_latency(home, addr)
        far = llc.access_latency((home + 4) % 8, addr)
        assert local == llc.config.latency
        assert far == llc.config.latency + 4 * llc.hop_latency

    def test_ring_distance_is_bidirectional(self):
        llc = make_sliced_llc(slices=8)
        addr = 0x40000
        home = llc.slice_of(addr)
        # 7 hops clockwise == 1 hop counter-clockwise.
        neighbor = (home + 7) % 8
        assert llc.access_latency(neighbor, addr) == llc.config.latency + llc.hop_latency

    def test_slice_override(self):
        llc = make_sliced_llc(slices=8)
        llc.set_slice_override(0x40000, 3)
        assert llc.slice_of(0x40000) == 3

    def test_override_requires_slices(self):
        llc = make_sliced_llc(slices=0)
        with pytest.raises(ValueError):
            llc.set_slice_override(0x40000, 0)

    def test_override_range_checked(self):
        llc = make_sliced_llc(slices=4)
        with pytest.raises(ValueError):
            llc.set_slice_override(0x40000, 4)

    def test_negative_slices_rejected(self):
        with pytest.raises(ValueError):
            make_sliced_llc(slices=-1)


class TestCacheDirectorController:
    def make(self):
        sim = Simulator()
        h = MemoryHierarchy(
            HierarchyConfig(num_cores=2, l1_enabled=False, llc_slices=8)
        )
        return sim, h, CacheDirectorController(sim, h)

    def test_requires_sliced_llc(self):
        sim = Simulator()
        h = MemoryHierarchy(HierarchyConfig(num_cores=2, l1_enabled=False))
        with pytest.raises(ValueError):
            CacheDirectorController(sim, h)

    def test_header_pinned_to_local_slice(self):
        sim, h, ctl = make = self.make()
        addr = 0x123400
        assert ctl.steer(IdioTag(dest_core=1, is_header=True), addr, 0) == "llc"
        assert h.llc.slice_of(addr) == h.llc.home_slice_of_core(1)
        assert ctl.headers_steered == 1

    def test_payload_not_steered(self):
        sim, h, ctl = self.make()
        addr = 0x123440
        before = h.llc.slice_of(addr)
        ctl.steer(IdioTag(dest_core=1, is_header=False), addr, 0)
        assert h.llc.slice_of(addr) == before
        assert ctl.headers_steered == 0


class TestPolicyIntegration:
    def test_policy_table(self):
        p = policy_by_name("cachedirector")
        assert p.slice_header_steering
        assert p.needs_classifier and not p.needs_controller

    def test_cannot_combine_with_idio(self):
        from repro.core.policies import PolicyConfig

        with pytest.raises(ValueError):
            PolicyConfig(name="x", slice_header_steering=True, direct_dram=True)

    def test_server_defaults_slices_for_cachedirector(self):
        server = SimulatedServer(ServerConfig(policy=cachedirector()))
        assert server.hierarchy.llc.slices == 8
        assert server.cachedirector is not None

    def test_header_latency_improves_vs_sliced_ddio(self):
        """On the same NUCA topology, CacheDirector's header pinning must
        not be slower than plain DDIO, and it changes no writeback
        behavior (the paper's critique: the MLC WB penalty remains)."""

        def run(policy):
            exp = Experiment(
                name=f"cd-{policy.name}",
                server=ServerConfig(
                    policy=policy, app="l2fwd", ring_size=256,
                    packet_bytes=1024, llc_slices=8,
                ),
                traffic="bursty",
                burst_rate_gbps=25.0,
            )
            return run_experiment(exp)

        base = run(ddio())
        cd = run(cachedirector())
        assert cd.p50_ns <= base.p50_ns * 1.01
        assert cd.window.mlc_writebacks == pytest.approx(
            base.window.mlc_writebacks, rel=0.1
        )
        assert cd.server.cachedirector.headers_steered > 0
