"""Unit tests for counters and event logs."""

import pytest

from repro.mem.stats import Counter, EventLog, StatsBundle
from repro.sim import units


class TestCounter:
    def test_add_and_get(self):
        c = Counter()
        c.add("x")
        c.add("x", 4)
        assert c.get("x") == 5

    def test_unknown_is_zero(self):
        assert Counter().get("nope") == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter().add("x", -1)

    def test_snapshot_is_copy(self):
        c = Counter()
        c.add("a")
        snap = c.snapshot()
        snap["a"] = 99
        assert c.get("a") == 1

    def test_reset(self):
        c = Counter()
        c.add("a", 3)
        c.reset()
        assert c.get("a") == 0


class TestEventLog:
    def test_record_and_count(self):
        log = EventLog()
        log.record("wb", 10)
        log.record("wb", 20)
        assert log.count("wb") == 2
        assert log.count("other") == 0

    def test_count_between_half_open(self):
        log = EventLog()
        for t in (0, 10, 20, 30):
            log.record("wb", t)
        assert log.count_between("wb", 10, 30) == 2  # [10, 30)

    def test_rate_series_bins(self):
        log = EventLog()
        for t in (0, 5, 10, 15, 25):
            log.record("wb", t)
        series = log.rate_series("wb", bin_ticks=10, start=0, end=30)
        assert series == [(0, 2), (10, 2), (20, 1)]

    def test_rate_series_includes_empty_bins(self):
        log = EventLog()
        log.record("wb", 25)
        series = log.rate_series("wb", bin_ticks=10, start=0, end=30)
        assert series == [(0, 0), (10, 0), (20, 1)]

    def test_rate_series_invalid_bin(self):
        with pytest.raises(ValueError):
            EventLog().rate_series("wb", 0)

    def test_mtps_series_units(self):
        log = EventLog()
        # 10 events within one 10 us bin = 1 MTPS.
        for i in range(10):
            log.record("wb", units.microseconds(1) * i)
        series = log.mtps_series(
            "wb", units.microseconds(10), 0, units.microseconds(10)
        )
        assert len(series) == 1
        t_us, mtps = series[0]
        assert t_us == 0.0
        assert mtps == pytest.approx(1.0)

    def test_timestamps_copy(self):
        log = EventLog()
        log.record("wb", 1)
        ts = log.timestamps("wb")
        ts.append(99)
        assert log.timestamps("wb") == [1]


class TestStatsBundle:
    def test_bump_updates_counter_and_log(self):
        s = StatsBundle()
        s.bump("mlc_writebacks", 100)
        assert s.counters.get("mlc_writebacks") == 1
        assert s.events.count("mlc_writebacks") == 1

    def test_bump_without_log(self):
        s = StatsBundle()
        s.bump("x", 5, log=False)
        assert s.counters.get("x") == 1
        assert s.events.count("x") == 0

    def test_bump_amount(self):
        s = StatsBundle()
        s.bump("x", 5, amount=3)
        assert s.counters.get("x") == 3
        assert s.events.count("x") == 3

    def test_reset(self):
        s = StatsBundle()
        s.bump("x", 5)
        s.reset()
        assert s.counters.get("x") == 0
        assert s.events.count("x") == 0
