"""Unit tests for the trace-export helpers."""

import csv
import io

import pytest

from repro.harness.traces import (
    DEFAULT_STREAMS,
    binned_rows,
    export_csv,
    to_csv_string,
    write_csv,
)
from repro.mem.stats import StatsBundle
from repro.sim import units


def make_stats():
    s = StatsBundle()
    for i in range(10):
        s.bump("mlc_writebacks", units.microseconds(1) * i)
    s.bump("llc_writebacks", units.microseconds(15))
    return s


class TestBinnedRows:
    def test_shared_time_axis(self):
        rows = binned_rows(
            make_stats(),
            ["mlc_writebacks", "llc_writebacks"],
            0,
            units.microseconds(20),
        )
        assert len(rows) == 2
        assert rows[0][0] == 0.0
        assert rows[1][0] == 10.0

    def test_rates_in_mtps(self):
        rows = binned_rows(
            make_stats(), ["mlc_writebacks"], 0, units.microseconds(20)
        )
        # 10 events in the first 10 us bin -> 1 MTPS.
        assert rows[0][1] == pytest.approx(1.0)
        assert rows[1][1] == 0.0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            binned_rows(make_stats(), ["x"], 10, 10)


class TestCsv:
    def test_header_names_streams(self):
        buf = io.StringIO()
        write_csv(make_stats(), buf, 0, units.microseconds(20), ["mlc_writebacks"])
        header = buf.getvalue().splitlines()[0]
        assert header == "time_us,mlc_writebacks_mtps"

    def test_default_streams(self):
        text = to_csv_string(make_stats(), 0, units.microseconds(10))
        header = text.splitlines()[0]
        for stream in DEFAULT_STREAMS:
            assert f"{stream}_mtps" in header

    def test_roundtrip_parse(self):
        text = to_csv_string(make_stats(), 0, units.microseconds(20), ["mlc_writebacks"])
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 2
        assert float(rows[0]["mlc_writebacks_mtps"]) == pytest.approx(1.0)

    def test_export_to_file(self, tmp_path):
        path = tmp_path / "trace.csv"
        n = export_csv(make_stats(), str(path), 0, units.microseconds(30))
        assert n == 3
        assert path.read_text().count("\n") == 4  # header + 3 rows
