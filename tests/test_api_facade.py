"""Tests for the stable facade (``repro.api``) and the wrapper deprecations.

The contract under test: everything a downstream user needs lives behind
``import repro`` (round-trip an experiment without one deep import), the
top-level namespace re-exports exactly the facade, and the legacy
``MemoryHierarchy`` convenience wrappers warn on every call while still
behaving identically to ``access(txn)``.
"""

import warnings

import pytest

import repro
import repro.api


class TestFacadeSurface:
    def test_top_level_reexports_exactly_the_facade(self):
        assert list(repro.__all__) == list(repro.api.__all__)
        for name in repro.api.__all__:
            assert getattr(repro, name) is getattr(repro.api, name)

    def test_version_is_pep440ish(self):
        major, minor, patch = repro.__version__.split(".")
        assert all(part.isdigit() for part in (major, minor, patch))

    def test_fault_types_are_the_canonical_ones(self):
        from repro.faults import FaultEvent, FaultPlan, FaultSpec

        assert repro.FaultPlan is FaultPlan
        assert repro.FaultSpec is FaultSpec
        assert repro.FaultEvent is FaultEvent

    def test_round_trip_without_deep_imports(self):
        """A full faulted experiment, driven only through ``repro``."""
        plan = repro.standard_plan("nic", intensity=0.5, seed=1)
        exp = repro.Experiment(
            name="facade",
            server=repro.ServerConfig(
                app="touchdrop", ring_size=128, fault_plan=plan
            ),
            burst_rate_gbps=25.0,
        ).with_policy(repro.idio())
        summary = repro.run_experiment(exp).summary()
        assert isinstance(summary, repro.ExperimentSummary)
        assert summary.completed > 0

    def test_build_server_returns_unstarted_server(self):
        server = repro.build_server(repro.ServerConfig(app="touchdrop"))
        assert isinstance(server, repro.SimulatedServer)
        assert server.sim.now == 0

    def test_run_sweep_reachable_from_facade(self):
        exp = repro.Experiment(
            name="facade-sweep",
            server=repro.ServerConfig(app="touchdrop", ring_size=128),
            burst_rate_gbps=25.0,
        )
        sweep = repro.run_sweep([exp], jobs=1)
        assert isinstance(sweep, repro.SweepResult)
        assert sweep.exit_code == 0


class TestLegacyWrapperDeprecation:
    def _hierarchy(self):
        from repro.mem.hierarchy import HierarchyConfig, MemoryHierarchy

        return MemoryHierarchy(HierarchyConfig())

    ADDR = 0x4000

    def test_all_five_wrappers_warn(self):
        h = self._hierarchy()
        calls = [
            ("pcie_write", (self.ADDR, 0)),
            ("pcie_read", (self.ADDR, 0)),
            ("cpu_access", (0, self.ADDR, False, 0)),
            ("prefetch_fill", (0, self.ADDR, 0)),
            ("invalidate", (0, self.ADDR, 0)),
        ]
        for name, args in calls:
            with pytest.warns(DeprecationWarning, match=rf"MemoryHierarchy\.{name}"):
                getattr(h, name)(*args)

    def test_warning_names_the_replacement(self):
        h = self._hierarchy()
        with pytest.warns(DeprecationWarning, match="access\\(txn\\)"):
            h.pcie_write(self.ADDR, 0)

    def test_wrapper_still_behaves_like_access(self):
        """Deprecated != broken: the wrapper must keep its semantics."""
        h = self._hierarchy()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            h.pcie_write(self.ADDR, 0)
        assert h.llc.peek(self.ADDR) is not None
