"""Tests for the stable facade (``repro.api``) and the wrapper removal.

The contract under test: everything a downstream user needs lives behind
``import repro`` (round-trip an experiment without one deep import), the
top-level namespace re-exports exactly the facade, and the legacy
``MemoryHierarchy`` convenience wrappers — deprecated through the 0.4
line — are gone in 0.5.0 in favor of the one typed entry point,
``access(txn)`` (see ``tests/memtxn.py`` for the migration).
"""

import repro
import repro.api
from tests.memtxn import pcie_write


class TestFacadeSurface:
    def test_top_level_reexports_exactly_the_facade(self):
        assert list(repro.__all__) == list(repro.api.__all__)
        for name in repro.api.__all__:
            assert getattr(repro, name) is getattr(repro.api, name)

    def test_version_is_pep440ish(self):
        major, minor, patch = repro.__version__.split(".")
        assert all(part.isdigit() for part in (major, minor, patch))

    def test_fault_types_are_the_canonical_ones(self):
        from repro.faults import FaultEvent, FaultPlan, FaultSpec

        assert repro.FaultPlan is FaultPlan
        assert repro.FaultSpec is FaultSpec
        assert repro.FaultEvent is FaultEvent

    def test_round_trip_without_deep_imports(self):
        """A full faulted experiment, driven only through ``repro``."""
        plan = repro.standard_plan("nic", intensity=0.5, seed=1)
        exp = repro.Experiment(
            name="facade",
            server=repro.ServerConfig(
                app="touchdrop", ring_size=128, fault_plan=plan
            ),
            burst_rate_gbps=25.0,
        ).with_policy(repro.idio())
        summary = repro.run_experiment(exp).summary()
        assert isinstance(summary, repro.ExperimentSummary)
        assert summary.completed > 0

    def test_build_server_returns_unstarted_server(self):
        server = repro.build_server(repro.ServerConfig(app="touchdrop"))
        assert isinstance(server, repro.SimulatedServer)
        assert server.sim.now == 0

    def test_run_sweep_reachable_from_facade(self):
        exp = repro.Experiment(
            name="facade-sweep",
            server=repro.ServerConfig(app="touchdrop", ring_size=128),
            burst_rate_gbps=25.0,
        )
        sweep = repro.run_sweep([exp], jobs=1)
        assert isinstance(sweep, repro.SweepResult)
        assert sweep.exit_code == 0


class TestLegacyWrapperRemoval:
    def _hierarchy(self):
        from repro.mem.hierarchy import HierarchyConfig, MemoryHierarchy

        return MemoryHierarchy(HierarchyConfig())

    ADDR = 0x4000

    def test_wrappers_are_gone(self):
        """The 0.4-deprecated wrappers did not survive into 0.5.0."""
        h = self._hierarchy()
        for name in (
            "cpu_access",
            "pcie_write",
            "pcie_read",
            "prefetch_fill",
            "invalidate",
        ):
            assert not hasattr(h, name), f"legacy wrapper {name} still present"

    def test_typed_replacement_behaves_like_the_wrapper_did(self):
        """Removed != lost: the one-line migration keeps the semantics."""
        h = self._hierarchy()
        pcie_write(h, self.ADDR, 0)
        assert h.llc.peek(self.ADDR) is not None
