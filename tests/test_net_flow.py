"""Flow construction and ToR steering: the million-flow regime.

The historical ``make_flow`` silently overflowed the 16-bit port fields
past index ~45k, so distinct indices started colliding exactly where the
rack tier needs them distinct.  These tests pin the lane/slot encoding:
backward-compatible values for small indices, validity and uniqueness at
one million flows, and deterministic, balanced steering on top.
"""

import pytest

from repro.net.flow import (
    FLOW_LANE_SPAN,
    MAX_FLOWS,
    FlowSteering,
    flow_key,
    make_flow,
    make_flows,
    steering_table_histogram,
)
from repro.net.packet import FiveTuple


class TestMakeFlow:
    def test_backward_compatible_below_one_lane(self):
        # Indices below FLOW_LANE_SPAN reproduce the historical
        # single-lane encoding exactly (committed fingerprints depend
        # on these values).
        for index in (0, 1, 7, 4_999, FLOW_LANE_SPAN - 1):
            flow = make_flow(index)
            assert flow.src_ip == 0x0A00_0001 + index
            assert flow.dst_ip == 0x0A00_1001 + index
            assert flow.src_port == 10_000 + index
            assert flow.dst_port == 20_000 + index

    def test_ports_stay_in_range_past_one_lane(self):
        # The old base+index scheme put src_port at 10_000 + 60_000 here.
        flow = make_flow(60_000)
        assert 0 < flow.src_port < 65_536
        assert 0 < flow.dst_port < 65_536

    @pytest.mark.parametrize("index", [-1, MAX_FLOWS])
    def test_out_of_range_rejected(self, index):
        with pytest.raises(ValueError):
            make_flow(index)

    def test_one_million_flows_unique_and_valid(self):
        # The rack-tier regression test: one million distinct indices
        # must produce one million distinct, valid 5-tuples.  Uniqueness
        # is checked on the packed integer key, which covers the whole
        # tuple at ~40 bytes/flow instead of materializing tuples twice.
        count = 1_000_000
        keys = set()
        min_sp = min_dp = 65_536
        max_sp = max_dp = 0
        for i in range(count):
            flow = make_flow(i)
            keys.add(flow_key(flow))
            if flow.src_port < min_sp:
                min_sp = flow.src_port
            if flow.src_port > max_sp:
                max_sp = flow.src_port
            if flow.dst_port < min_dp:
                min_dp = flow.dst_port
            if flow.dst_port > max_dp:
                max_dp = flow.dst_port
        assert len(keys) == count, f"{count - len(keys)} flow collisions"
        assert 0 < min_sp and max_sp < 65_536
        assert 0 < min_dp and max_dp < 65_536

    def test_src_ip_alone_recovers_index(self):
        # Injectivity argument: src_ip encodes (lane, slot) losslessly.
        for index in (0, FLOW_LANE_SPAN - 1, FLOW_LANE_SPAN, 1_234_567):
            flow = make_flow(index)
            lane = (flow.src_ip - 0x0A00_0001) >> 16
            slot = (flow.src_ip - 0x0A00_0001) & 0xFFFF
            assert lane * FLOW_LANE_SPAN + slot == index

    def test_make_flows_deterministic(self):
        assert make_flows(256) == make_flows(256)


class TestFlowKey:
    def test_distinct_fields_distinct_keys(self):
        a = FiveTuple(src_ip=1, dst_ip=2, src_port=3, dst_port=4)
        b = FiveTuple(src_ip=1, dst_ip=2, src_port=3, dst_port=5)
        assert flow_key(a) != flow_key(b)

    def test_key_is_stable(self):
        flow = make_flow(123_456)
        assert flow_key(flow) == flow_key(make_flow(123_456))


class TestFlowSteering:
    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            FlowSteering(0)
        with pytest.raises(ValueError):
            FlowSteering(4, mode="toeplitz")
        with pytest.raises(ValueError):
            FlowSteering(4, table_bits=0)

    @pytest.mark.parametrize("mode", ["rss", "rendezvous"])
    def test_deterministic_across_instances(self, mode):
        flows = make_flows(2_000)
        a = FlowSteering(5, mode=mode, seed=7)
        b = FlowSteering(5, mode=mode, seed=7)
        assert [a.server_for(f) for f in flows] == [
            b.server_for(f) for f in flows
        ]

    @pytest.mark.parametrize("mode", ["rss", "rendezvous"])
    def test_assignment_covers_all_flows(self, mode):
        flows = make_flows(4_096)
        steering = FlowSteering(4, mode=mode)
        buckets = steering.assign(flows)
        assert sum(len(b) for b in buckets) == len(flows)
        assert steering.assignment_counts(flows) == [len(b) for b in buckets]

    @pytest.mark.parametrize("mode", ["rss", "rendezvous"])
    def test_reasonably_balanced(self, mode):
        flows = make_flows(8_192)
        counts = FlowSteering(4, mode=mode).assignment_counts(flows)
        expected = len(flows) / 4
        for count in counts:
            assert 0.7 * expected < count < 1.3 * expected, counts

    def test_rss_table_maximally_balanced(self):
        # Round-robin fill: per-server entry counts differ by at most 1.
        hist = steering_table_histogram(FlowSteering(5, table_bits=10))
        assert max(hist.values()) - min(hist.values()) <= 1
        assert sum(hist.values()) == 1 << 10

    def test_histogram_rejects_rendezvous(self):
        with pytest.raises(ValueError):
            steering_table_histogram(FlowSteering(4, mode="rendezvous"))

    def test_rendezvous_minimal_remap_on_server_removal(self):
        # The consistent-hashing property: dropping the last server
        # remaps only the flows that server owned.
        flows = make_flows(4_096)
        before = FlowSteering(5, mode="rendezvous", seed=3)
        after = FlowSteering(4, mode="rendezvous", seed=3)
        moved = 0
        for flow in flows:
            old = before.server_for(flow)
            new = after.server_for(flow)
            if old != new:
                moved += 1
                assert old == 4, "a surviving server's flow moved"
        owned_by_removed = before.assignment_counts(flows)[4]
        assert moved == owned_by_removed

    def test_digest_differs_by_configuration(self):
        base = FlowSteering(4, seed=0).digest()
        assert FlowSteering(5, seed=0).digest() != base
        assert FlowSteering(4, seed=1).digest() != base
        assert FlowSteering(4, mode="rendezvous", seed=0).digest() != base
        # Same configuration, fresh instance: identical digest.
        assert FlowSteering(4, seed=0).digest() == base
