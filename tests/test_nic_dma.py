"""Unit tests for the DMA engine and the NIC RX/TX paths."""

import pytest

from repro.mem.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.net.flow import make_flow
from repro.net.packet import Packet
from repro.nic.dma import DMAEngine
from repro.nic.nic import NIC, NicConfig
from repro.pcie.root_complex import RootComplex
from repro.pcie.tlp import IdioTag
from repro.sim import Simulator, units


def make_stack(nic_config=None, hook=None):
    sim = Simulator()
    hierarchy = MemoryHierarchy(HierarchyConfig(num_cores=2, l1_enabled=False))
    rc = RootComplex(sim, hierarchy, hook)
    dma = DMAEngine(sim, rc, pcie_gbps=256.0)
    nic = NIC(sim, dma, nic_config or NicConfig(ring_size=8))
    return sim, hierarchy, dma, nic


class TestDMAEngine:
    def test_write_buffer_writes_all_lines(self):
        sim, h, dma, _ = make_stack()
        dma.write_buffer(0x10000, 1514)
        sim.run()
        assert dma.lines_written == 24
        assert h.stats.counters.get("pcie_writes") == 24

    def test_link_serialization(self):
        sim, h, dma, _ = make_stack()
        t1 = dma.write_buffer(0x10000, 64)
        t2 = dma.write_buffer(0x20000, 64)
        assert t2 == t1 + units.transfer_time(64, 256.0)

    def test_tag_count_mismatch_rejected(self):
        sim, h, dma, _ = make_stack()
        with pytest.raises(ValueError):
            dma.write_buffer(0x10000, 1514, tags=[IdioTag()])

    def test_completion_callback_after_writes(self):
        sim, h, dma, _ = make_stack()
        seen = []
        dma.write_buffer(
            0x10000, 128, on_complete=lambda: seen.append(h.stats.counters.get("pcie_writes"))
        )
        sim.run()
        assert seen == [2]  # both lines written before the callback

    def test_read_buffer(self):
        sim, h, dma, _ = make_stack()
        dma.read_buffer(0x10000, 1514)
        sim.run()
        assert dma.lines_read == 24
        assert h.stats.counters.get("pcie_reads") == 24


class TestNicRx:
    def setup_queue(self, nic):
        flow = make_flow(0)
        nic.flow_director.install_rule(flow, 0)
        nic.add_queue(0, 0, desc_base=0x1000, buffer_base=0x100000)
        return flow

    def test_accepted_packet_dmas_buffer(self):
        sim, h, dma, nic = make_stack()
        flow = self.setup_queue(nic)
        assert nic.receive(Packet(flow=flow, size_bytes=1514))
        sim.run()
        assert dma.lines_written >= 24  # data + descriptor writeback
        assert nic.total_rx == 1

    def test_descriptor_visible_after_writeback(self):
        sim, h, dma, nic = make_stack()
        flow = self.setup_queue(nic)
        nic.receive(Packet(flow=flow))
        queue = nic.queue_for_core(0)
        assert queue.ring.peek_ready() is None
        sim.run()
        assert queue.ring.peek_ready() is not None

    def test_visibility_delay_matches_config(self):
        """First DMA to PMD visibility ~= descriptor writeback delay."""
        sim, h, dma, nic = make_stack()
        flow = self.setup_queue(nic)
        nic.receive(Packet(flow=flow))
        queue = nic.queue_for_core(0)
        ready_time = []

        def check():
            if queue.ring.peek_ready() is not None and not ready_time:
                ready_time.append(sim.now)
            if sim.now < units.microseconds(10):
                sim.schedule_after(units.nanoseconds(10), check)

        sim.schedule_at(0, check)
        sim.run(until=units.microseconds(10))
        assert ready_time, "packet never became visible"
        lag = ready_time[0] - nic.config.rx_pipeline_delay
        assert lag >= nic.config.descriptor_writeback_delay

    def test_ring_full_drops(self):
        sim, h, dma, nic = make_stack(NicConfig(ring_size=2))
        flow = self.setup_queue(nic)
        results = [nic.receive(Packet(flow=flow)) for _ in range(3)]
        assert results == [True, True, False]
        assert nic.total_drops == 1
        assert nic.queue_for_core(0).rx_drops == 1

    def test_unpinned_core_rejected(self):
        sim, h, dma, nic = make_stack()
        self.setup_queue(nic)
        stray_flow = make_flow(9)  # default core 0 exists, so route there
        assert nic.receive(Packet(flow=stray_flow))

    def test_duplicate_queue_rejected(self):
        sim, h, dma, nic = make_stack()
        self.setup_queue(nic)
        with pytest.raises(ValueError):
            nic.add_queue(0, 1, desc_base=0x2000, buffer_base=0x200000)

    def test_rx_observer_called(self):
        sim, h, dma, nic = make_stack()
        flow = self.setup_queue(nic)
        seen = []
        nic.rx_observers.append(lambda p, core: seen.append(core))
        nic.receive(Packet(flow=flow))
        assert seen == [0]


class TestNicTx:
    def test_transmit_reads_buffer(self):
        sim, h, dma, nic = make_stack()
        done = []
        nic.transmit(0x100000, 1514, on_complete=lambda: done.append(sim.now))
        sim.run()
        assert dma.lines_read == 24
        assert nic.total_tx == 1
        assert done


class TestClassifierIntegration:
    def test_classifier_tags_reach_controller(self):
        seen_tags = []

        def hook(tag, addr, now):
            seen_tags.append(tag)
            return "llc"

        cfg = NicConfig(ring_size=8, classifier_enabled=True)
        sim, h, dma, nic = make_stack(cfg, hook)
        flow = make_flow(0)
        nic.flow_director.install_rule(flow, 0)
        nic.add_queue(0, 0, desc_base=0x1000, buffer_base=0x100000)
        nic.receive(Packet(flow=flow, size_bytes=1514))
        # Bounded run: the classifier's periodic reset task never drains.
        sim.run(until=units.microseconds(20))
        data_tags = seen_tags[:24]
        assert data_tags[0].is_header
        assert all(not t.is_header for t in data_tags[1:])
        # Descriptor writeback lines are tagged header-class.
        assert all(t.is_header for t in seen_tags[24:])
