"""Tests for heterogeneous per-core application deployments."""

import pytest

from repro.core.policies import ddio, idio
from repro.harness.experiment import Experiment, run_experiment
from repro.harness.extensions import ext_mixed_deployment
from repro.harness.server import ServerConfig, SimulatedServer


class TestConfig:
    def test_apps_list_overrides_app(self):
        server = SimulatedServer(
            ServerConfig(apps=["touchdrop", "l2fwd-payload-drop"], ring_size=32)
        )
        assert server.apps[0].name == "touchdrop"
        assert server.apps[1].name == "l2fwd-payload-drop"

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SimulatedServer(ServerConfig(apps=["touchdrop"], num_nf_cores=2))

    def test_unknown_app_in_list_rejected(self):
        with pytest.raises(ValueError):
            SimulatedServer(ServerConfig(apps=["touchdrop", "nginx"]))

    def test_uniform_app_still_works(self):
        server = SimulatedServer(ServerConfig(app="l2fwd", ring_size=32))
        assert all(a.name == "l2fwd" for a in server.apps)


class TestMixedClassBehavior:
    def run_mixed(self, policy):
        exp = Experiment(
            name="mixed",
            server=ServerConfig(
                policy=policy,
                apps=["touchdrop", "l2fwd-payload-drop"],
                ring_size=64,
                packet_bytes=1024,
            ),
            traffic="bursty",
            burst_rate_gbps=50.0,
        )
        return run_experiment(exp)

    def test_flows_marked_per_app_class(self):
        result = self.run_mixed(ddio())
        gen0, gen1 = result.server.generators
        assert gen0.app_class == 0
        assert gen1.app_class == 1

    def test_only_class1_payload_goes_direct_to_dram(self):
        result = self.run_mixed(idio())
        # 64 packets x 15 payload lines from the class-1 core only.
        assert result.server.stats.counters.get("direct_dram_writes") == 64 * 15
        # The class-0 core's payloads stayed on the cache path.
        assert result.decisions["direct_dram"] == 64 * 15
        assert result.decisions["header_prefetch"] > 0

    def test_both_apps_complete_their_packets(self):
        result = self.run_mixed(idio())
        for driver in result.server.drivers:
            assert len(driver.completed_packets) == 64

    def test_extension_report(self):
        report = ext_mixed_deployment(ring_size=64)
        rows = {r["policy"]: r for r in report.rows}
        assert rows["ddio"]["direct_dram_wr"] == 0
        assert rows["idio"]["direct_dram_wr"] > 0
