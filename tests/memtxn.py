"""Free-function shorthands for driving a ``MemoryHierarchy`` in tests.

The 0.4 line carried deprecated convenience wrappers on the hierarchy
itself (``h.cpu_access(...)`` etc.); 0.5.0 removed them in favor of the
one typed entry point, ``MemoryHierarchy.access(txn)``.  These helpers
keep the tests terse while showing the one-line migration for each
retired wrapper: build the :class:`MemoryTransaction`, call ``access``,
read the fields off the transaction.
"""

from repro.mem.hierarchy import AccessResult, MemoryHierarchy
from repro.mem.transaction import (
    CPU_LOAD,
    CPU_STORE,
    DMA_READ,
    DMA_WRITE,
    INVALIDATE,
    PREFETCH_FILL,
    MemoryTransaction,
)


def cpu_access(
    h: MemoryHierarchy, core: int, addr: int, is_write: bool, now: int
) -> AccessResult:
    """A demand load/store from ``core``; returns latency and hit level."""
    txn = MemoryTransaction(CPU_STORE if is_write else CPU_LOAD, addr, now, core=core)
    h.access(txn)
    return AccessResult(txn.latency, txn.level or "dram")


def pcie_write(h: MemoryHierarchy, addr: int, now: int, placement: str = "llc") -> int:
    """A full-cacheline inbound DMA write; returns the latency."""
    txn = MemoryTransaction(DMA_WRITE, addr, now, placement=placement)
    h.access(txn)
    return txn.latency


def pcie_read(h: MemoryHierarchy, addr: int, now: int) -> int:
    """An outbound DMA read (NIC TX); returns the latency."""
    txn = MemoryTransaction(DMA_READ, addr, now)
    h.access(txn)
    return txn.latency


def prefetch_fill(h: MemoryHierarchy, core: int, addr: int, now: int) -> bool:
    """MLC prefetch; ``True`` when a fill actually happened."""
    txn = MemoryTransaction(PREFETCH_FILL, addr, now, core=core)
    h.access(txn)
    return txn.level != "dropped"


def invalidate(
    h: MemoryHierarchy, core: int, addr: int, now: int, scope: str = "all"
) -> None:
    """Invalidate-without-writeback of one line."""
    h.access(MemoryTransaction(INVALIDATE, addr, now, core=core, scope=scope))
