"""Tests for multi-NIC (multi-port) server configurations."""

import pytest

from repro.core.policies import ddio, idio
from repro.harness.experiment import Experiment, run_experiment
from repro.harness.server import ServerConfig, SimulatedServer
from repro.sim import units


class TestTopology:
    def test_default_single_port(self):
        server = SimulatedServer(ServerConfig(ring_size=32))
        assert len(server.nics) == 1
        assert server.nic is server.nics[0]

    def test_two_ports_split_cores(self):
        server = SimulatedServer(
            ServerConfig(ring_size=32, num_nf_cores=4, num_nics=2)
        )
        assert len(server.nics) == 2
        assert set(server.nics[0].queues) == {0, 2}
        assert set(server.nics[1].queues) == {1, 3}

    def test_each_port_has_its_own_link(self):
        server = SimulatedServer(ServerConfig(ring_size=32, num_nics=2))
        assert server.nics[0].dma is not server.nics[1].dma

    def test_all_queues_spans_ports(self):
        server = SimulatedServer(
            ServerConfig(ring_size=32, num_nf_cores=4, num_nics=2)
        )
        assert len(list(server.all_queues())) == 4


class TestTraffic:
    def run_two_port(self, policy=None, num_cores=4):
        exp = Experiment(
            name="two-port",
            server=ServerConfig(
                policy=policy or ddio(),
                ring_size=64,
                num_nf_cores=num_cores,
                num_nics=2,
            ),
            traffic="bursty",
            burst_rate_gbps=50.0,
        )
        return run_experiment(exp)

    def test_packets_delivered_on_both_ports(self):
        result = self.run_two_port()
        server = result.server
        assert server.nics[0].total_rx == 128  # 2 cores x 64
        assert server.nics[1].total_rx == 128
        assert result.completed == 256

    def test_aggregate_accounting(self):
        result = self.run_two_port()
        assert result.rx_packets == result.server.total_rx == 256
        assert result.rx_drops == result.server.total_drops == 0

    def test_idio_works_across_ports(self):
        """Both NICs' classifiers feed the single on-chip controller."""
        result = self.run_two_port(policy=idio())
        for nic in result.server.nics:
            assert nic.classifier is not None
            assert nic.classifier.bursts_detected > 0
        assert result.completed == 256
        assert result.window.llc_writebacks == 0  # IDIO still wins

    def test_link_isolation_reduces_dma_serialization(self):
        """Two ports finish the same aggregate DMA no later than one port
        (each has its own PCIe link server)."""
        one = run_experiment(
            Experiment(
                name="one-port",
                server=ServerConfig(ring_size=64, num_nf_cores=4, num_nics=1),
                traffic="bursty",
                burst_rate_gbps=50.0,
            )
        )
        two = self.run_two_port()
        assert two.burst_processing_time <= one.burst_processing_time * 1.05
