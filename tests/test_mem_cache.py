"""Unit + property tests for the generic set-associative cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.cache import CacheConfig, SetAssociativeCache
from repro.mem.line import LINE_SIZE, CacheLine


def small_cache(assoc=4, sets=4, replacement="lru"):
    cfg = CacheConfig(
        "test", sets * assoc * LINE_SIZE, assoc, latency=1, replacement=replacement
    )
    return SetAssociativeCache(cfg)


def addr_for_set(cache, set_idx, tag=0):
    """Line address mapping to set ``set_idx`` with distinct tag."""
    return (tag * cache.num_sets + set_idx) * LINE_SIZE


class TestGeometry:
    def test_num_sets(self):
        cfg = CacheConfig("c", 1024 * 1024, 8, 1)
        assert cfg.num_sets == 2048

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig("c", 1000, 3, 1).validate()

    def test_table1_mlc_geometry(self):
        cfg = CacheConfig("mlc", 1024 * 1024, 8, 1)
        cfg.validate()
        assert cfg.num_sets * cfg.assoc == 16384  # 1 MB of 64 B lines


class TestBasicOps:
    def test_insert_then_lookup(self):
        c = small_cache()
        c.insert(CacheLine(0))
        assert c.lookup(0) is not None
        assert 0 in c

    def test_miss_returns_none(self):
        c = small_cache()
        assert c.lookup(0) is None

    def test_peek_does_not_touch_recency(self):
        c = small_cache(assoc=2, sets=1)
        a, b = addr_for_set(c, 0, 0), addr_for_set(c, 0, 1)
        c.insert(CacheLine(a))
        c.insert(CacheLine(b))
        c.peek(a)  # should NOT refresh a
        victim = c.insert(CacheLine(addr_for_set(c, 0, 2)))
        assert victim.addr == a

    def test_lookup_refreshes_recency(self):
        c = small_cache(assoc=2, sets=1)
        a, b = addr_for_set(c, 0, 0), addr_for_set(c, 0, 1)
        c.insert(CacheLine(a))
        c.insert(CacheLine(b))
        c.lookup(a)
        victim = c.insert(CacheLine(addr_for_set(c, 0, 2)))
        assert victim.addr == b

    def test_insert_existing_updates_in_place(self):
        c = small_cache()
        c.insert(CacheLine(0, dirty=False))
        victim = c.insert(CacheLine(0, dirty=True))
        assert victim is None
        assert c.peek(0).dirty
        assert len(c) == 1

    def test_dirty_is_sticky_on_update(self):
        c = small_cache()
        c.insert(CacheLine(0, dirty=True))
        c.insert(CacheLine(0, dirty=False))
        assert c.peek(0).dirty

    def test_remove(self):
        c = small_cache()
        c.insert(CacheLine(0))
        removed = c.remove(0)
        assert removed.addr == 0
        assert 0 not in c
        assert c.remove(0) is None

    def test_eviction_on_full_set(self):
        c = small_cache(assoc=2, sets=1)
        c.insert(CacheLine(addr_for_set(c, 0, 0)))
        c.insert(CacheLine(addr_for_set(c, 0, 1)))
        victim = c.insert(CacheLine(addr_for_set(c, 0, 2)))
        assert victim is not None
        assert len(c) == 2

    def test_clear(self):
        c = small_cache()
        c.insert(CacheLine(0))
        c.clear()
        assert len(c) == 0


class TestWayMasks:
    def test_fill_restricted_to_mask(self):
        c = small_cache(assoc=4, sets=1)
        # Fill ways 0-1 via mask, then verify victims come from the mask.
        a0, a1, a2 = (addr_for_set(c, 0, t) for t in range(3))
        c.insert(CacheLine(a0), way_mask=[0, 1])
        c.insert(CacheLine(a1), way_mask=[0, 1])
        victim = c.insert(CacheLine(a2), way_mask=[0, 1])
        assert victim is not None
        assert victim.addr == a0  # LRU within the mask

    def test_masked_fill_does_not_evict_outside_mask(self):
        c = small_cache(assoc=4, sets=1)
        outside = addr_for_set(c, 0, 9)
        c.insert(CacheLine(outside), way_mask=[2])
        for t in range(5):
            c.insert(CacheLine(addr_for_set(c, 0, t)), way_mask=[0, 1])
        assert outside in c

    def test_empty_mask_rejected(self):
        c = small_cache()
        with pytest.raises(ValueError):
            c.insert(CacheLine(0), way_mask=[])

    def test_out_of_range_way_rejected(self):
        c = small_cache(assoc=2, sets=1)
        with pytest.raises(ValueError):
            c.insert(CacheLine(0), way_mask=[5])

    def test_mask_order_controls_empty_slot_preference(self):
        c = small_cache(assoc=4, sets=1)
        c.insert(CacheLine(addr_for_set(c, 0, 0)), way_mask=[2, 3, 0, 1])
        # The line should occupy way 2 (first in the preference order).
        assert c._where[addr_for_set(c, 0, 0)][1] == 2


class TestOccupancy:
    def test_occupancy_by_origin(self):
        c = small_cache()
        c.insert(CacheLine(0, origin="io"))
        c.insert(CacheLine(64, origin="cpu"))
        c.insert(CacheLine(128, origin="io"))
        assert c.occupancy_by_origin() == {"io": 2, "cpu": 1}


@st.composite
def op_sequences(draw):
    n_ops = draw(st.integers(min_value=1, max_value=120))
    ops = []
    for _ in range(n_ops):
        kind = draw(st.sampled_from(["insert", "remove", "lookup"]))
        addr = draw(st.integers(min_value=0, max_value=63)) * LINE_SIZE
        ops.append((kind, addr))
    return ops


class TestProperties:
    @settings(max_examples=50)
    @given(op_sequences())
    def test_capacity_and_consistency_invariants(self, ops):
        c = small_cache(assoc=2, sets=4)
        for kind, addr in ops:
            if kind == "insert":
                c.insert(CacheLine(addr))
            elif kind == "remove":
                c.remove(addr)
            else:
                c.lookup(addr)
            # Invariant 1: never exceed capacity (per set and total).
            assert len(c) <= c.num_sets * c.assoc
            # Invariant 2: the address index agrees with the stored lines.
            stored = sorted(line.addr for line in c.lines())
            assert stored == sorted(c._where.keys())
            # Invariant 3: each line sits in the set its address maps to.
            for line in c.lines():
                set_idx, _ = c._where[line.addr]
                assert set_idx == c.set_index(line.addr)

    @settings(max_examples=30)
    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=80))
    def test_most_recent_insert_always_resident(self, tags):
        c = small_cache(assoc=2, sets=2)
        for tag in tags:
            addr = tag * LINE_SIZE
            c.insert(CacheLine(addr))
            assert addr in c
