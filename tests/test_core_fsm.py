"""Unit + property tests for the Fig. 8 status FSM."""

from hypothesis import given, strategies as st

from repro.core.fsm import STATE_MAX, STATE_MIN, STATUS_LLC, STATUS_MLC, StatusFSM


class TestDefaults:
    def test_boot_state_disables_prefetching(self):
        fsm = StatusFSM()
        assert fsm.state == STATE_MAX
        assert fsm.status == STATUS_LLC
        assert not fsm.steers_to_mlc


class TestTransitions:
    def test_burst_resets_to_zero(self):
        fsm = StatusFSM()
        fsm.on_burst()
        assert fsm.state == STATE_MIN
        assert fsm.steers_to_mlc

    def test_high_pressure_increments(self):
        fsm = StatusFSM()
        fsm.on_burst()
        fsm.on_pressure(True)
        assert fsm.state == 0b01

    def test_three_high_samples_disable_prefetching(self):
        fsm = StatusFSM()
        fsm.on_burst()
        for _ in range(3):
            fsm.on_pressure(True)
        assert fsm.state == STATE_MAX
        assert not fsm.steers_to_mlc

    def test_low_pressure_decrements(self):
        fsm = StatusFSM()
        fsm.on_burst()
        fsm.on_pressure(True)
        fsm.on_pressure(False)
        assert fsm.state == STATE_MIN

    def test_saturates_high(self):
        fsm = StatusFSM()
        for _ in range(10):
            fsm.on_pressure(True)
        assert fsm.state == STATE_MAX

    def test_saturates_low(self):
        fsm = StatusFSM()
        fsm.on_burst()
        for _ in range(10):
            fsm.on_pressure(False)
        assert fsm.state == STATE_MIN

    def test_hysteresis_single_spike_does_not_disable(self):
        fsm = StatusFSM()
        fsm.on_burst()
        fsm.on_pressure(True)   # one spike
        fsm.on_pressure(False)  # recovered
        assert fsm.steers_to_mlc

    def test_intermediate_states_still_steer_to_mlc(self):
        """Only the saturated 0b11 state disables steering."""
        fsm = StatusFSM()
        fsm.on_burst()
        fsm.on_pressure(True)
        assert fsm.steers_to_mlc  # 0b01
        fsm.on_pressure(True)
        assert fsm.steers_to_mlc  # 0b10
        fsm.on_pressure(True)
        assert not fsm.steers_to_mlc  # 0b11


class TestProperties:
    @given(st.lists(st.sampled_from(["burst", "high", "low"]), max_size=200))
    def test_state_always_in_range(self, events):
        fsm = StatusFSM()
        for ev in events:
            if ev == "burst":
                fsm.on_burst()
            else:
                fsm.on_pressure(ev == "high")
            assert STATE_MIN <= fsm.state <= STATE_MAX
            assert fsm.status in (STATUS_LLC, STATUS_MLC)

    @given(st.lists(st.booleans(), max_size=100))
    def test_burst_always_reenables(self, pressures):
        fsm = StatusFSM()
        for p in pressures:
            fsm.on_pressure(p)
        fsm.on_burst()
        assert fsm.steers_to_mlc
