"""Unit tests for packets, flows, and DSCP classes."""

import pytest
from hypothesis import given, strategies as st

from repro.net.flow import make_flow, make_flows
from repro.net.packet import (
    APP_CLASS_LONG_USE,
    APP_CLASS_SHORT_USE,
    MTU_FRAME_BYTES,
    FiveTuple,
    Packet,
)


class TestPacket:
    def test_mtu_frame_geometry(self):
        p = Packet(size_bytes=MTU_FRAME_BYTES)
        assert p.num_lines == 24
        assert p.header_lines == 1
        assert p.payload_lines == 23

    def test_1024_byte_packet(self):
        p = Packet(size_bytes=1024)
        assert p.num_lines == 16

    def test_tiny_packet_is_all_header(self):
        p = Packet(size_bytes=60)
        assert p.num_lines == 1
        assert p.header_lines == 1
        assert p.payload_lines == 0

    def test_wire_bytes_includes_overhead(self):
        p = Packet(size_bytes=1514)
        assert p.wire_bytes == 1538

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Packet(size_bytes=0)

    def test_invalid_app_class(self):
        with pytest.raises(ValueError):
            Packet(app_class=2)

    def test_valid_app_classes(self):
        assert Packet(app_class=APP_CLASS_SHORT_USE).app_class == 0
        assert Packet(app_class=APP_CLASS_LONG_USE).app_class == 1

    def test_latency_none_until_completed(self):
        p = Packet(arrival_time=100)
        assert p.latency is None
        p.completion_time = 350
        assert p.latency == 250

    def test_unique_packet_ids(self):
        ids = {Packet().packet_id for _ in range(100)}
        assert len(ids) == 100


class TestFiveTuple:
    def test_hash_in_table_range(self):
        flow = FiveTuple(1, 2, 3, 4)
        assert 0 <= flow.hash_value(13) < 8192

    def test_hash_deterministic(self):
        a = FiveTuple(10, 20, 30, 40)
        b = FiveTuple(10, 20, 30, 40)
        assert a.hash_value(13) == b.hash_value(13)

    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=0, max_value=2**16 - 1))
    def test_hash_range_property(self, ip, port):
        flow = FiveTuple(ip, ip ^ 0xFFFF, port, port ^ 0xFF)
        assert 0 <= flow.hash_value(13) < 8192


class TestFlowFactory:
    def test_flows_distinct(self):
        flows = make_flows(16)
        assert len(set(flows)) == 16

    def test_deterministic(self):
        assert make_flow(3) == make_flow(3)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            make_flow(-1)
