"""Tests for the resilient sweep runner (``run_sweep``).

The sweep runner is the harness-level half of the fault story: a batch
must survive crashed workers (bounded retry with backoff), hung workers
(per-experiment timeout), and outright failures, and still report every
experiment in a partial-result manifest with an exit code that reflects
the damage.  Crashes and hangs are injected deterministically through
``harness.*`` fault kinds, so these tests need no monkeypatching.
"""

import json

import pytest

from repro.faults import FaultPlan, FaultSpec, standard_plan
from repro.harness.experiment import Experiment
from repro.harness.runner import (
    InjectedCrash,
    SweepRecord,
    SweepResult,
    _apply_harness_faults,
    run_sweep,
)
from repro.harness.server import ServerConfig


def sweep_experiment(name, plan=None, **kwargs):
    return Experiment(
        name=name,
        server=ServerConfig(
            app="touchdrop",
            ring_size=128,
            fault_plan=plan if plan is not None else FaultPlan(),
        ),
        burst_rate_gbps=25.0,
        traffic="bursty",
        **kwargs,
    )


def crash_plan(crashing_attempts):
    """A plan whose worker crashes on the first ``crashing_attempts``
    attempts (0 = every attempt)."""
    return FaultPlan(specs=(
        FaultSpec("harness.crash", magnitude=float(crashing_attempts)),
    ))


def hang_plan(seconds):
    return FaultPlan(specs=(FaultSpec("harness.hang", magnitude=seconds),))


class TestHarnessFaults:
    def test_crash_zero_magnitude_crashes_every_attempt(self):
        exp = sweep_experiment("c", crash_plan(0))
        for attempt in (1, 2, 5):
            with pytest.raises(InjectedCrash):
                _apply_harness_faults(exp, attempt)

    def test_crash_magnitude_bounds_crashing_attempts(self):
        exp = sweep_experiment("c", crash_plan(1))
        with pytest.raises(InjectedCrash):
            _apply_harness_faults(exp, 1)
        _apply_harness_faults(exp, 2)  # attempt 2 survives

    def test_probability_gate_is_deterministic(self):
        plan = FaultPlan(
            specs=(FaultSpec("harness.crash", probability=0.5),), seed=9
        )
        exp = sweep_experiment("c", plan)
        outcomes = []
        for _ in range(3):
            try:
                _apply_harness_faults(exp, 1)
                outcomes.append("ok")
            except InjectedCrash:
                outcomes.append("crash")
        assert len(set(outcomes)) == 1  # same attempt => same draw


@pytest.mark.parametrize("jobs", [1, 2])
class TestRunSweep:
    def test_clean_sweep_all_ok(self, jobs):
        batch = [sweep_experiment(f"ok-{i}") for i in range(2)]
        sweep = run_sweep(batch, jobs=jobs)
        assert [r.status for r in sweep.records] == ["ok", "ok"]
        assert all(s is not None for s in sweep.summaries)
        assert sweep.exit_code == 0
        assert sweep.counts() == {"ok": 2}

    def test_crash_once_is_retried(self, jobs):
        sweep = run_sweep([sweep_experiment("flaky", crash_plan(1))],
                          jobs=jobs, retries=1)
        (rec,) = sweep.records
        assert rec.status == "retried"
        assert rec.attempts == 2
        assert rec.succeeded
        assert sweep.summaries[0].status == "retried"
        assert sweep.exit_code == 0

    def test_crash_always_is_failed_after_retries(self, jobs):
        sweep = run_sweep([sweep_experiment("dead", crash_plan(0))],
                          jobs=jobs, retries=1)
        (rec,) = sweep.records
        assert rec.status == "failed"
        assert rec.attempts == 2  # initial + 1 retry
        assert "InjectedCrash" in rec.error
        assert sweep.summaries == [None]
        assert sweep.exit_code == 2  # nothing succeeded

    def test_mixed_batch_partial_failure_manifest(self, jobs):
        """The acceptance scenario: one hanging and one crashing
        experiment ride along with healthy ones; both losses land in the
        manifest and the exit code reports partial failure."""
        batch = [
            sweep_experiment("healthy-0"),
            sweep_experiment("wedged", hang_plan(1.5)),
            sweep_experiment("crasher", crash_plan(0)),
            sweep_experiment("healthy-1"),
        ]
        sweep = run_sweep(batch, jobs=jobs, timeout_s=0.75, retries=1)
        by_name = {r.name: r for r in sweep.records}
        assert by_name["healthy-0"].status == "ok"
        assert by_name["healthy-1"].status == "ok"
        assert by_name["wedged"].status == "timeout"
        assert by_name["crasher"].status == "failed"
        assert sweep.exit_code == 1  # partial failure

        # Positional pairing survives the losses.
        assert sweep.summaries[1] is None and sweep.summaries[2] is None
        assert sweep.summaries[0].experiment.name == "healthy-0"

        manifest = sweep.failure_manifest()
        json.dumps(manifest)  # must be JSON-able for CI artifacts
        assert manifest["total"] == 4
        assert manifest["exit_code"] == 1
        assert {f["name"] for f in manifest["failures"]} == {"wedged", "crasher"}
        statuses = {f["name"]: f["status"] for f in manifest["failures"]}
        assert statuses == {"wedged": "timeout", "crasher": "failed"}

    def test_faulted_sweep_deterministic_fingerprints(self, jobs):
        """Same seeded FaultPlan => byte-identical summary fingerprints,
        serial and pooled (the fault-layer determinism regression)."""
        batch = [sweep_experiment("det", standard_plan("all", seed=11))]
        reference = run_sweep(batch, jobs=1).summaries[0]
        other = run_sweep(batch, jobs=jobs).summaries[0]
        assert other.fingerprint() == reference.fingerprint()
        assert other.fault_counts == reference.fault_counts
        assert other.fault_counts  # the plan actually injected


class TestSweepResult:
    def _rec(self, status):
        return SweepRecord(name="x", status=status, attempts=1)

    def test_exit_codes(self):
        assert SweepResult(records=[self._rec("ok")]).exit_code == 0
        assert SweepResult(
            records=[self._rec("ok"), self._rec("failed")]
        ).exit_code == 1
        assert SweepResult(
            records=[self._rec("timeout"), self._rec("failed")]
        ).exit_code == 2
        assert SweepResult().exit_code == 0  # empty sweep is a no-op

    def test_retried_counts_as_success(self):
        assert self._rec("retried").succeeded
        assert not self._rec("timeout").succeeded

    def test_empty_input_returns_empty_result(self):
        sweep = run_sweep([], jobs=4)
        assert sweep.records == [] and sweep.summaries == []
