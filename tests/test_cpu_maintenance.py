"""Unit tests for the cache-maintenance unit (invalidate-without-WB)."""

import pytest

from repro.cpu.maintenance import MaintenanceUnit
from repro.cpu.pagetable import InvalidatePermissionError, PageTable
from repro.mem.hierarchy import HierarchyConfig, MemoryHierarchy
from tests.memtxn import cpu_access, pcie_write

BUF = 0x40000  # page- and line-aligned


def make_unit(with_page_table=False, scope="all"):
    h = MemoryHierarchy(HierarchyConfig(num_cores=1, l1_enabled=False))
    pt = None
    if with_page_table:
        pt = PageTable()
        pt.allocate_invalidatable(BUF, 8192)
    return h, MaintenanceUnit(0, h, page_table=pt, scope=scope)


class TestInvalidateRange:
    def test_invalidates_every_line(self):
        h, unit = make_unit()
        for i in range(24):
            cpu_access(h, 0, BUF + i * 64, True, 0)
        unit.invalidate_range(BUF, 1514, 0)
        assert unit.invalidated_lines == 24
        for i in range(24):
            assert BUF + i * 64 not in h.mlc[0]

    def test_no_writeback_happens(self):
        h, unit = make_unit()
        for i in range(4):
            cpu_access(h, 0, BUF + i * 64, True, 0)  # dirty lines
        unit.invalidate_range(BUF, 256, 0)
        assert h.dram.writes == 0
        assert h.stats.counters.get("mlc_writebacks") == 0

    def test_cost_scales_with_lines(self):
        h, unit = make_unit()
        cost = unit.invalidate_range(BUF, 1514, 0)
        assert cost == 24 * MaintenanceUnit.INVALIDATE_LINE_COST

    def test_pte_check_enforced(self):
        h, unit = make_unit(with_page_table=True)
        unit.invalidate_range(BUF, 1514, 0)  # allowed
        with pytest.raises(InvalidatePermissionError):
            unit.invalidate_range(0x90000, 64, 0)  # unmapped page

    def test_private_scope_leaves_llc(self):
        h, unit = make_unit(scope="private")
        pcie_write(h, BUF, 0)
        unit.invalidate_range(BUF, 64, 0)
        assert BUF in h.llc


class TestFlushRange:
    def test_dirty_data_written_to_dram(self):
        h, unit = make_unit()
        cpu_access(h, 0, BUF, True, 0)  # dirty in MLC
        unit.flush_range(BUF, 64, 0)
        assert h.dram.writes == 1
        assert BUF not in h.mlc[0]

    def test_clean_data_not_written(self):
        h, unit = make_unit()
        cpu_access(h, 0, BUF, False, 0)
        h.dram.stats.reset()
        unit.flush_range(BUF, 64, 0)
        assert h.dram.writes == 0
