"""tools/bench.py --check: regression comparison and exit-code propagation."""

from tools.bench import compare, jobs_matrix, workload_matrix


def matrix(**walls):
    return {
        "results": {name: {"wall_seconds": wall} for name, wall in walls.items()}
    }


def matrix_rows(cpus=1, quick=False, **rows):
    """A run dict whose rows are full dicts (jobs/cpus/etc.)."""
    return {"cpus": cpus, "quick": quick, "results": dict(rows)}


def test_within_threshold_passes():
    failures = compare(matrix(a=1.0, b=2.0), matrix(a=1.0, b=2.0), 25.0)
    assert failures == []


def test_regression_reported_with_diff_summary():
    failures = compare(matrix(a=2.0), matrix(a=1.0), 25.0)
    assert len(failures) == 1
    assert "a" in failures[0]
    assert "+100.0%" in failures[0]
    assert "1.00s -> 2.00s" in failures[0]


def test_improvement_is_not_a_failure():
    assert compare(matrix(a=0.5), matrix(a=1.0), 25.0) == []


def test_missing_baseline_workload_is_flagged():
    # Baseline measured 'b' but the current run silently dropped it.
    failures = compare(matrix(a=1.0), matrix(a=1.0, b=3.0), 25.0)
    assert failures == ["b missing from current run"]


def test_new_workload_without_baseline_is_allowed():
    assert compare(matrix(a=1.0, new=9.9), matrix(a=1.0), 25.0) == []


def test_exit_code_propagation(monkeypatch, tmp_path):
    """main(--check) returns 1 on regression, 0 when clean."""
    import tools.bench as bench

    baseline = tmp_path / "BENCH_2026-01-01.json"
    import json

    baseline.write_text(json.dumps(matrix(a=1.0)))
    monkeypatch.setattr(bench, "latest_committed", lambda: baseline)
    monkeypatch.setattr(
        bench,
        "run_matrix",
        lambda quick=False: {"date": "x", "results": matrix(a=2.0)["results"]},
    )
    assert bench.main(["--check"]) == 1
    monkeypatch.setattr(
        bench,
        "run_matrix",
        lambda quick=False: {"date": "x", "results": matrix(a=1.0)["results"]},
    )
    assert bench.main(["--check"]) == 0


def test_multijob_row_gates_only_on_matching_core_count():
    row = {"wall_seconds": 4.0, "jobs": 4, "cpus": 4}
    slow = {"wall_seconds": 9.0, "jobs": 4, "cpus": 1}
    # Different host core count: the jobs=4 regression is informational.
    assert compare(
        matrix_rows(cpus=1, fig10_quick_jobs4=slow),
        matrix_rows(cpus=4, fig10_quick_jobs4=row),
        25.0,
    ) == []
    # Same core count: it gates.
    slow_same = {"wall_seconds": 9.0, "jobs": 4, "cpus": 4}
    failures = compare(
        matrix_rows(cpus=4, fig10_quick_jobs4=slow_same),
        matrix_rows(cpus=4, fig10_quick_jobs4=row),
        25.0,
    )
    assert len(failures) == 1 and "fig10_quick_jobs4" in failures[0]


def test_jobs1_rows_gate_regardless_of_core_count():
    base = {"wall_seconds": 1.0, "jobs": 1, "cpus": 4}
    slow = {"wall_seconds": 2.0, "jobs": 1, "cpus": 1}
    failures = compare(
        matrix_rows(cpus=1, fig10_quick_jobs1=slow),
        matrix_rows(cpus=4, fig10_quick_jobs1=base),
        25.0,
    )
    assert len(failures) == 1


def test_baseline_only_multijob_row_is_not_a_dropped_workload():
    # A 4-core baseline measured jobs=4; a 1-core host never will.
    row = {"wall_seconds": 4.0, "jobs": 4, "cpus": 4}
    assert compare(
        matrix_rows(cpus=1),
        matrix_rows(cpus=4, fig10_quick_jobs4=row),
        25.0,
    ) == []


def test_legacy_baseline_rows_without_jobs_field_match_by_name():
    # Pre-matrix baselines recorded no per-row jobs/cpus; the name
    # fallback must still treat *_jobs4 as host-derived.
    legacy = {"wall_seconds": 4.0}
    assert compare(
        matrix_rows(cpus=1),
        {"cpus": 1, "results": {"fig10_quick_jobs4": legacy}},
        25.0,
    ) == []


def test_quick_run_skips_full_matrix_rows():
    base_full = matrix_rows(
        cpus=1,
        burst_faulted={"wall_seconds": 2.0},
        burst_reference={"wall_seconds": 1.0},
    )
    quick = matrix_rows(
        cpus=1, quick=True, burst_reference={"wall_seconds": 1.0}
    )
    assert compare(quick, base_full, 25.0) == []


def test_workload_matrix_covers_serial_and_all_cores():
    rows = workload_matrix(quick=False)
    jobs = jobs_matrix()
    assert "burst_reference" in rows and "burst_faulted" in rows
    for j in jobs:
        assert f"fig10_quick_jobs{j}" in rows
    quick_rows = workload_matrix(quick=True)
    assert "burst_faulted" not in quick_rows
    assert "fig10_quick_jobs1" in quick_rows
    assert f"fig10_quick_jobs{jobs[-1]}" in quick_rows
    # The rack tier row rides in both matrices.
    assert "rack_quick" in rows and "rack_quick" in quick_rows
