"""tools/bench.py --check: regression comparison and exit-code propagation."""

from tools.bench import compare


def matrix(**walls):
    return {
        "results": {name: {"wall_seconds": wall} for name, wall in walls.items()}
    }


def test_within_threshold_passes():
    failures = compare(matrix(a=1.0, b=2.0), matrix(a=1.0, b=2.0), 25.0)
    assert failures == []


def test_regression_reported_with_diff_summary():
    failures = compare(matrix(a=2.0), matrix(a=1.0), 25.0)
    assert len(failures) == 1
    assert "a" in failures[0]
    assert "+100.0%" in failures[0]
    assert "1.00s -> 2.00s" in failures[0]


def test_improvement_is_not_a_failure():
    assert compare(matrix(a=0.5), matrix(a=1.0), 25.0) == []


def test_missing_baseline_workload_is_flagged():
    # Baseline measured 'b' but the current run silently dropped it.
    failures = compare(matrix(a=1.0), matrix(a=1.0, b=3.0), 25.0)
    assert failures == ["b missing from current run"]


def test_new_workload_without_baseline_is_allowed():
    assert compare(matrix(a=1.0, new=9.9), matrix(a=1.0), 25.0) == []


def test_exit_code_propagation(monkeypatch, tmp_path):
    """main(--check) returns 1 on regression, 0 when clean."""
    import tools.bench as bench

    baseline = tmp_path / "BENCH_2026-01-01.json"
    import json

    baseline.write_text(json.dumps(matrix(a=1.0)))
    monkeypatch.setattr(bench, "latest_committed", lambda: baseline)
    monkeypatch.setattr(
        bench, "run_matrix", lambda: {"date": "x", "results": matrix(a=2.0)["results"]}
    )
    assert bench.main(["--check"]) == 1
    monkeypatch.setattr(
        bench, "run_matrix", lambda: {"date": "x", "results": matrix(a=1.0)["results"]}
    )
    assert bench.main(["--check"]) == 0
