"""Unit tests for the DRAM model."""

import pytest

from repro.mem.dram import DRAM
from repro.mem.stats import StatsBundle
from repro.sim import units


class TestDram:
    def test_counters(self):
        dram = DRAM(StatsBundle())
        dram.read(0, 0)
        dram.write(64, 10)
        dram.write(128, 20)
        assert dram.reads == 1
        assert dram.writes == 2

    def test_fixed_latency(self):
        dram = DRAM(StatsBundle(), latency=units.nanoseconds(70))
        assert dram.read(0, 0) == units.nanoseconds(70)

    def test_no_throttle_by_default(self):
        dram = DRAM(StatsBundle(), latency=100)
        # Back-to-back accesses at the same tick see no queueing.
        assert dram.read(0, 0) == 100
        assert dram.read(64, 0) == 100

    def test_throttle_adds_queueing_delay(self):
        dram = DRAM(StatsBundle(), latency=0, peak_gbps=64 * 8 / 1000.0)
        # Peak = one line per 1000 ns.
        first = dram.read(0, 0)
        second = dram.read(64, 0)
        assert second > first

    def test_bandwidth_accounting(self):
        stats = StatsBundle()
        dram = DRAM(stats)
        # 1000 line writes over 1 us = 64 KB/us = 512 Gbps.
        for i in range(1000):
            dram.write(i * 64, i * units.nanoseconds(1))
        bw = dram.bandwidth_gbps("dram_writes", 0, units.microseconds(1))
        assert bw == pytest.approx(512.0, rel=0.01)

    def test_bandwidth_empty_window(self):
        dram = DRAM(StatsBundle())
        assert dram.bandwidth_gbps("dram_reads", 0, units.microseconds(1)) == 0.0
