"""Unit tests for the root complex and its steering hook."""

from repro.mem.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.pcie.root_complex import RootComplex
from repro.pcie.tlp import IdioTag, MemReadTLP, MemWriteTLP
from repro.sim import Simulator


def make_rc(hook=None):
    sim = Simulator()
    hierarchy = MemoryHierarchy(HierarchyConfig(num_cores=2, l1_enabled=False))
    return sim, hierarchy, RootComplex(sim, hierarchy, hook)


class TestBaseline:
    def test_write_lands_in_llc_by_default(self):
        sim, h, rc = make_rc()
        rc.memory_write(MemWriteTLP(address=0x1000, tag=IdioTag()))
        assert 0x1000 in h.llc

    def test_read_counts(self):
        sim, h, rc = make_rc()
        rc.memory_read(MemReadTLP(address=0x1000))
        assert h.stats.counters.get("pcie_reads") == 1


class TestSteeringHook:
    def test_hook_receives_decoded_tag(self):
        seen = []

        def hook(tag, addr, now):
            seen.append((tag, addr))
            return "llc"

        sim, h, rc = make_rc(hook)
        tag = IdioTag(dest_core=3, is_header=True)
        rc.memory_write(MemWriteTLP(address=0x2000, tag=tag))
        assert seen == [(tag, 0x2000)]

    def test_hook_tag_roundtrips_through_tlp_bits(self):
        """The hook must see the tag after a real encode/decode cycle."""
        seen = []

        def hook(tag, addr, now):
            seen.append(tag)
            return "llc"

        sim, h, rc = make_rc(hook)
        original = IdioTag(dest_core=42, is_header=False, is_burst=True)
        rc.memory_write(MemWriteTLP(address=0x3000, tag=original))
        assert seen[0] == original

    def test_hook_dram_placement_respected(self):
        sim, h, rc = make_rc(lambda tag, addr, now: "dram")
        rc.memory_write(MemWriteTLP(address=0x4000, tag=IdioTag()))
        assert 0x4000 not in h.llc
        assert h.dram.writes == 1

    def test_attach_controller_replaces_hook(self):
        sim, h, rc = make_rc()
        rc.attach_controller(lambda tag, addr, now: "dram")
        rc.memory_write(MemWriteTLP(address=0x5000, tag=IdioTag()))
        assert h.dram.writes == 1
