#!/usr/bin/env python3
"""Selective direct DRAM access for a header-only firewall (IDIO M3).

The paper's class-1 example is a DoS-detection firewall: it inspects
packet headers and almost never the payload, so payload cachelines have a
very long use distance and only pollute the LLC.  Senders mark such flows
via the DSCP field; IDIO's classifier propagates the class through the
TLP reserved bits, and the controller writes the payload straight to
DRAM while keeping headers on the fast cache path.

This example runs the header-only L2FwdPayloadDrop function (class 1)
under DDIO and IDIO and shows where the payload bytes end up.

Run:  python examples/firewall_direct_dram.py
"""

from repro import Experiment, ServerConfig, run_experiment
from repro.core import ddio, idio
from repro.harness.report import format_table


def run_firewall(policy):
    experiment = Experiment(
        name=f"firewall-{policy.name}",
        server=ServerConfig(
            app="l2fwd-payload-drop",  # header-inspecting, class-1 NF
            ring_size=1024,
            packet_bytes=1024,
        ),
        traffic="bursty",
        burst_rate_gbps=100.0,
    )
    return run_experiment(experiment.with_policy(policy))


def main() -> None:
    print("Running header-only firewall under DDIO ...")
    base = run_firewall(ddio())
    print("Running header-only firewall under IDIO (direct DRAM for payload) ...")
    ours = run_firewall(idio())

    rows = []
    for name, r in (("DDIO", base), ("IDIO", ours)):
        counters = r.server.stats.counters
        rows.append(
            [
                name,
                r.completed,
                counters.get("ddio_allocations") + counters.get("ddio_updates"),
                counters.get("direct_dram_writes"),
                r.window.llc_writebacks,
                r.window.dram_writes,
            ]
        )
    print()
    print(
        format_table(
            [
                "policy",
                "packets",
                "lines via LLC (DDIO path)",
                "lines direct to DRAM",
                "LLC writebacks",
                "DRAM writes",
            ],
            rows,
            title="Class-1 firewall, 1024 B packets, 100 Gbps burst",
        )
    )
    print()
    print(
        "Under IDIO the payload (15 of 16 lines per packet) bypasses the\n"
        "cache hierarchy entirely: DRAM writes ~= RX payload bandwidth and\n"
        "the LLC stays clean for the headers and co-running applications.\n"
        "Headers still ride the DDIO path and are prefetched to the MLC:",
    )
    print("  IDIO decisions:", ours.decisions)


if __name__ == "__main__":
    main()
