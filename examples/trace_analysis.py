#!/usr/bin/env python3
"""Export simulator traces to CSV and analyze them with numpy.

Shows the data-out workflow: run a multi-burst experiment, export the
10 us-binned event-rate timelines, then post-process them like any
measurement data — here, detecting the DMA/execution phases of each
burst and measuring how long the memory subsystem stays disturbed under
DDIO vs IDIO.

Run:  python examples/trace_analysis.py
"""

import csv
import io

import numpy as np

from repro import Experiment, ServerConfig, run_experiment
from repro.core import ddio, idio
from repro.harness.traces import to_csv_string
from repro.sim import units


def run_and_export(policy):
    experiment = Experiment(
        name=f"trace-{policy.name}",
        server=ServerConfig(app="touchdrop", ring_size=1024),
        traffic="bursty",
        burst_rate_gbps=100.0,
        num_bursts=2,
        burst_period=units.milliseconds(3),
    ).with_policy(policy)
    result = run_experiment(experiment)
    text = to_csv_string(
        result.server.stats,
        result.window.start,
        result.window.end,
        streams=["pcie_writes", "mlc_writebacks", "llc_writebacks"],
    )
    rows = list(csv.DictReader(io.StringIO(text)))
    data = {
        key: np.array([float(r[key]) for r in rows])
        for key in rows[0]
    }
    return result, data


def analyze(name, data):
    t = data["time_us"]
    dma = data["pcie_writes_mtps"]
    wb = data["mlc_writebacks_mtps"] + data["llc_writebacks_mtps"]

    # Burst boundaries: contiguous regions of DMA activity.
    active = dma > 0
    edges = np.flatnonzero(np.diff(active.astype(int)) == 1) + 1
    starts = [0] if active[0] else []
    starts += list(edges)

    print(f"=== {name} ===")
    print(f"bursts detected in trace: {len(starts)}")
    for i, s in enumerate(starts):
        # Disturbance duration: from burst start until writeback rates
        # return to zero.
        after = wb[s:]
        quiet = np.flatnonzero(after == 0)
        # Find the first index after which everything stays quiet.
        settle = len(after)
        for q in quiet:
            if np.all(after[q:] == 0):
                settle = q
                break
        print(
            f"  burst {i}: starts at {t[s]:.0f} us, "
            f"writeback disturbance lasts ~{settle * 10} us, "
            f"peak WB rate {after.max():.1f} MTPS"
        )
    total_wb_area = float(np.trapezoid(wb, t))
    print(f"integrated writeback activity: {total_wb_area:.0f} MTPS*us\n")
    return total_wb_area


def main() -> None:
    print("Running two 100 Gbps bursts under each policy ...\n")
    _, ddio_data = run_and_export(ddio())
    _, idio_data = run_and_export(idio())

    area_ddio = analyze("DDIO", ddio_data)
    area_idio = analyze("IDIO", idio_data)
    if area_ddio > 0:
        cut = (1 - area_idio / area_ddio) * 100
        print(f"IDIO removes {cut:.0f}% of the integrated writeback activity.")


if __name__ == "__main__":
    main()
