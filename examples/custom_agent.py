#!/usr/bin/env python3
"""Scripting a custom agent against a live simulation.

Everything in the harness is driven by the same discrete-event kernel, so
user code can attach its own agents.  This example spawns a coroutine
process that samples the DMA-buffer occupancy of each cache level every
50 us while a burst is processed — the live view of Fig. 3's red/gray
residency picture — and prints the resulting occupancy timeline.

Run:  python examples/custom_agent.py
"""

from repro import ServerConfig, SimulatedServer
from repro.core import idio
from repro.harness.report import format_table
from repro.sim import spawn, units


def main() -> None:
    server = SimulatedServer(ServerConfig(app="touchdrop", ring_size=1024,
                                          policy=idio()))
    server.start()
    server.inject_bursty(25.0, start=units.microseconds(20))

    samples = []

    def occupancy_probe():
        """Sample where the DMA-buffer lines currently live."""
        buffer_lines = set()
        for queue in server.all_queues():
            for desc in queue.ring.descriptors:
                base = desc.buffer_addr
                for i in range(24):
                    buffer_lines.add(base + i * 64)
        h = server.hierarchy
        while True:
            in_mlc = sum(
                1
                for addr in buffer_lines
                if any(addr in h.mlc[c] for c in range(h.config.num_cores))
            )
            in_llc = sum(1 for addr in buffer_lines if addr in h.llc)
            samples.append(
                (
                    units.to_microseconds(server.sim.now),
                    in_mlc,
                    in_llc,
                    len(buffer_lines) - in_mlc - in_llc,
                )
            )
            yield units.microseconds(50)

    probe = spawn(server.sim, occupancy_probe(), name="occupancy-probe")
    server.run_until_drained(units.milliseconds(3))
    probe.stop()
    server.stop()

    rows = [
        [f"{t:.0f}", mlc, llc, uncached]
        for t, mlc, llc, uncached in samples[:24]
    ]
    print(
        format_table(
            ["time (us)", "lines in MLCs", "lines in LLC", "uncached"],
            rows,
            title="DMA-buffer residency over one 25 Gbps burst (IDIO)",
        )
    )
    print(
        "\nThe custom probe is ~20 lines of user code: a generator that\n"
        "yields its sampling period, spawned with repro.sim.spawn()."
    )


if __name__ == "__main__":
    main()
