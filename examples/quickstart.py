#!/usr/bin/env python3
"""Quickstart: compare DDIO and IDIO on a single TouchDrop burst.

Builds the paper's evaluation platform (2 NF cores, non-inclusive 3 MB
LLC with 2 DDIO ways, 1 MB MLCs, 100 Gbps NIC model), fires one 25 Gbps
burst of 1514-byte packets at two DPDK-style TouchDrop network functions,
and prints what each inbound-placement policy did to the memory
hierarchy.

Run:  python examples/quickstart.py
"""

from repro import Experiment, ServerConfig, run_experiment
from repro.core import ddio, idio
from repro.harness.report import format_table
from repro.sim import units


def main() -> None:
    experiment = Experiment(
        name="quickstart",
        server=ServerConfig(app="touchdrop", ring_size=1024),
        traffic="bursty",
        burst_rate_gbps=25.0,
    )

    print("Running baseline DDIO ...")
    baseline = run_experiment(experiment.with_policy(ddio()))
    print("Running IDIO ...")
    ours = run_experiment(experiment.with_policy(idio()))

    rows = []
    for name, result in (("DDIO", baseline), ("IDIO", ours)):
        rows.append(
            [
                name,
                result.completed,
                result.window.mlc_writebacks,
                result.window.llc_writebacks,
                result.window.dram_writes,
                units.to_microseconds(result.burst_processing_time),
                result.p99_ns / 1000.0,
            ]
        )
    print()
    print(
        format_table(
            [
                "policy",
                "packets",
                "MLC WB",
                "LLC WB",
                "DRAM writes",
                "burst time (us)",
                "p99 latency (us)",
            ],
            rows,
            title="One 25 Gbps TouchDrop burst, 1024-entry rings",
        )
    )

    norm = ours.normalized_to(baseline)
    print()
    print("IDIO relative to DDIO (lower is better):")
    for key in ("mlc_writebacks", "llc_writebacks", "dram_writes", "exe_time"):
        print(f"  {key:16s} {norm[key]:.3f}x")
    print()
    print("IDIO controller decisions:", ours.decisions)


if __name__ == "__main__":
    main()
