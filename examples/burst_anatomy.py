#!/usr/bin/env python3
"""Anatomy of a burst: watch the DMA phase and the execution phase.

Reproduces the instrumentation behind the paper's Fig. 5/9 timelines:
one 100 Gbps burst into two TouchDrop functions, with 10 us-sampled
rates of DMA writes, MLC writebacks, and LLC writebacks rendered as
terminal sparklines for each placement policy.

Run:  python examples/burst_anatomy.py
"""

from repro import Experiment, ServerConfig, run_experiment
from repro.core import all_policies
from repro.harness.report import timeline_block
from repro.sim import units


def main() -> None:
    experiment = Experiment(
        name="burst-anatomy",
        server=ServerConfig(app="touchdrop", ring_size=1024),
        traffic="bursty",
        burst_rate_gbps=100.0,
    )

    for name in ("ddio", "invalidate", "prefetch", "static", "idio"):
        policy = all_policies()[name]
        result = run_experiment(experiment.with_policy(policy))
        burst_us = units.to_microseconds(result.burst_processing_time)
        print(f"=== {name} (burst processed in {burst_us:.0f} us) ===")
        print(timeline_block("DMA write rate", result.timeline("pcie_writes")))
        print(timeline_block("MLC writeback rate", result.timeline("mlc_writebacks")))
        print(timeline_block("LLC writeback rate", result.timeline("llc_writebacks")))
        if result.decisions:
            print(f"controller decisions: {result.decisions}")
        print()

    print(
        "Reading the timelines (cf. paper Fig. 5/9):\n"
        " * the DMA phase is the initial spike of PCIe writes; LLC\n"
        "   writebacks during it are the 'DMA leak' out of the 2 DDIO ways;\n"
        " * the execution phase follows, where under DDIO the MLC evicts\n"
        "   consumed (dead) buffers back into the LLC;\n"
        " * 'invalidate' removes the dead-buffer writebacks, 'prefetch'\n"
        "   shortens the burst, and IDIO combines both while regulating\n"
        "   MLC pressure with its per-core FSM."
    )


if __name__ == "__main__":
    main()
