#!/usr/bin/env python3
"""Compare the three buffer-recycling models of §II-B.

The paper classifies how software recycles NIC/CPU shared buffers:

* **run-to-completion** (DPDK): process packets in place, free the DMA
  buffer afterwards — the mode every headline experiment uses;
* **copy** (Linux stack): copy each packet out of the ring and process
  the copy — the DMA buffer is dead right after the first touch;
* **re-allocate**: stash filled buffers and replenish the ring from a
  mempool — the live DMA footprint doubles.

This example runs TouchDrop in each mode under DDIO and IDIO and shows
how the recycling model changes the memory-hierarchy traffic and how
IDIO's self-invalidating buffers help in all three (the invalidation
point just moves: after processing, after the copy, or after the
deferred consume).

Run:  python examples/recycling_modes.py
"""

from repro import Experiment, ServerConfig, run_experiment
from repro.core import ddio, idio
from repro.harness.report import format_table
from repro.sim import units


def run_mode(policy, mode: str):
    experiment = Experiment(
        name=f"recycle-{policy.name}-{mode}",
        server=ServerConfig(
            app="touchdrop",
            ring_size=512,
            recycle_mode=mode,
        ),
        traffic="bursty",
        burst_rate_gbps=50.0,
    )
    return run_experiment(experiment.with_policy(policy))


def main() -> None:
    rows = []
    for policy in (ddio(), idio()):
        for mode in ("run_to_completion", "copy", "reallocate"):
            print(f"Running {policy.name} / {mode} ...")
            r = run_mode(policy, mode)
            rows.append(
                [
                    policy.name,
                    mode,
                    r.window.mlc_writebacks,
                    r.window.llc_writebacks,
                    r.window.dram_writes,
                    sum(c.stats.mem_accesses for c in r.server.cores),
                    units.to_microseconds(r.burst_processing_time),
                ]
            )

    print()
    print(
        format_table(
            [
                "policy",
                "recycle mode",
                "MLC WB",
                "LLC WB",
                "DRAM writes",
                "core accesses",
                "burst time (us)",
            ],
            rows,
            title="TouchDrop, 50 Gbps burst, 512-entry rings",
        )
    )
    print()
    print(
        "Things to notice:\n"
        " * copy mode roughly doubles the core's memory accesses (it\n"
        "   touches both the DMA lines and the copy destination);\n"
        " * re-allocate mode cycles through twice the buffer addresses,\n"
        "   growing the DMA footprint in the cache hierarchy;\n"
        " * IDIO's self-invalidation removes the dead-buffer writebacks\n"
        "   in every recycling model."
    )


if __name__ == "__main__":
    main()
