#!/usr/bin/env python3
"""Mixed network-function deployment with an LLC-hungry co-tenant.

This example reproduces the paper's motivating server scenario: latency-
critical network functions share a socket with a cache-hungry analytics
job (the LLCAntagonist).  It runs TouchDrop + antagonist under DDIO and
IDIO across burst rates and shows both sides of the isolation story:

* the network functions' burst processing time and tail latency, and
* the antagonist's average memory access latency (its CPI proxy).

Run:  python examples/network_function_chain.py
"""

from repro import Experiment, ServerConfig, run_experiment
from repro.core import ddio, idio
from repro.harness.metrics import reduction_percent
from repro.harness.report import format_table
from repro.sim import units


def run_corun(policy, burst_rate_gbps: float):
    experiment = Experiment(
        name=f"corun-{policy.name}-{burst_rate_gbps:g}g",
        server=ServerConfig(
            app="touchdrop",
            ring_size=1024,
            antagonist=True,
            antagonist_buffer_bytes=2 * 1024 * 1024,
        ),
        traffic="bursty",
        burst_rate_gbps=burst_rate_gbps,
    )
    return run_experiment(experiment.with_policy(policy))


def main() -> None:
    rows = []
    for rate in (100.0, 25.0):
        print(f"Running co-run scenario at {rate:g} Gbps ...")
        base = run_corun(ddio(), rate)
        ours = run_corun(idio(), rate)
        rows.append(
            [
                f"{rate:g} Gbps",
                units.to_microseconds(base.burst_processing_time),
                units.to_microseconds(ours.burst_processing_time),
                reduction_percent(
                    base.burst_processing_time, ours.burst_processing_time
                ),
                base.p99_ns / 1000.0,
                ours.p99_ns / 1000.0,
                base.antagonist_access_ns,
                ours.antagonist_access_ns,
                reduction_percent(base.antagonist_access_ns, ours.antagonist_access_ns),
            ]
        )

    print()
    print(
        format_table(
            [
                "burst rate",
                "DDIO burst us",
                "IDIO burst us",
                "burst cut %",
                "DDIO p99 us",
                "IDIO p99 us",
                "DDIO antag ns",
                "IDIO antag ns",
                "antag cut %",
            ],
            rows,
            title="TouchDrop + LLCAntagonist co-run (paper Fig. 10/12 scenario)",
        )
    )
    print()
    print(
        "Paper reference points: co-run burst time improves 10.9% (100G) /"
        " 20.8% (25G); the antagonist's CPI improves 16.8-22.1%."
    )


if __name__ == "__main__":
    main()
